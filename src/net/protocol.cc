#include "net/protocol.h"

#include <cstring>
#include <limits>

namespace lpath {
namespace net {

namespace {

uint64_t Fnv1a64(std::span<const uint8_t> bytes, uint64_t hash = kFnvOffset) {
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnvPrime;
  }
  return hash;
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void PutString(std::string_view s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

/// Bounds-checked cursor over one payload. Every Try* either consumes and
/// returns true or leaves the cursor untouched and returns false, so a
/// decoder is a chain of Trys plus one final Done() check.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> payload)
      : payload_(payload) {}

  bool TryU32(uint32_t* out) {
    if (Remaining() < 4) return false;
    *out = ReadU32(payload_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool TryU64(uint64_t* out) {
    if (Remaining() < 8) return false;
    *out = ReadU64(payload_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool TryString(std::string* out) {
    uint32_t len = 0;
    size_t saved = pos_;
    if (!TryU32(&len) || Remaining() < len) {
      pos_ = saved;
      return false;
    }
    out->assign(reinterpret_cast<const char*>(payload_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  size_t Remaining() const { return payload_.size() - pos_; }
  bool Done() const { return pos_ == payload_.size(); }

 private:
  std::span<const uint8_t> payload_;
  size_t pos_ = 0;
};

Status Malformed(std::string_view what) {
  return Status::Corruption("malformed " + std::string(what) + " payload");
}

}  // namespace

bool IsClientType(MsgType type) {
  switch (type) {
    case MsgType::kHello:
    case MsgType::kPrepare:
    case MsgType::kExecute:
    case MsgType::kCancel:
    case MsgType::kPing:
    case MsgType::kGoodbye:
      return true;
    case MsgType::kStreamBatch:
    case MsgType::kStreamEnd:
    case MsgType::kError:
      return false;
  }
  return false;
}

WireCode WireCodeFromStatus(const Status& status) {
  // StatusCode values 0..10 are mirrored one-for-one (protocol.h pins the
  // numbers); the cast is the whole mapping.
  return static_cast<WireCode>(static_cast<uint32_t>(status.code()));
}

Status StatusFromWire(WireCode code, const std::string& message) {
  switch (code) {
    case WireCode::kOk:
      return Status::OK();
    case WireCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireCode::kNotFound:
      return Status::NotFound(message);
    case WireCode::kNotSupported:
      return Status::NotSupported(message);
    case WireCode::kCorruption:
      return Status::Corruption(message);
    case WireCode::kOutOfRange:
      return Status::OutOfRange(message);
    case WireCode::kIOError:
      return Status::IOError(message);
    case WireCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case WireCode::kInternal:
      return Status::Internal(message);
    case WireCode::kCancelled:
      return Status::Cancelled(message);
    case WireCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case WireCode::kProtocolError:
      return Status::Corruption("protocol error: " + message);
    case WireCode::kShuttingDown:
      return Status::ResourceExhausted("server shutting down: " + message);
    case WireCode::kVersionMismatch:
      return Status::NotSupported("protocol version mismatch: " + message);
  }
  return Status::Internal("unknown wire code " +
                          std::to_string(static_cast<uint32_t>(code)) + ": " +
                          message);
}

void AppendFrame(MsgType type, uint32_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out) {
  size_t start = out->size();
  PutU32(kFrameMagic, out);
  out->push_back(static_cast<uint8_t>(type));
  out->push_back(0);  // reserved
  out->push_back(0);  // reserved
  out->push_back(0);  // reserved
  PutU32(request_id, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  uint64_t hash = Fnv1a64({out->data() + start, 16});
  hash = Fnv1a64(payload, hash);
  PutU64(hash, out);
  out->insert(out->end(), payload.begin(), payload.end());
}

FrameParse ParseFrame(std::span<const uint8_t> in, size_t max_payload,
                      Frame* out, size_t* consumed, std::string* error) {
  *consumed = 0;
  if (in.size() < kFrameHeaderBytes) {
    // Damage in the bytes we *do* have is still detectable: never ask for
    // more input on a prefix that can't open a valid frame.
    if (!in.empty()) {
      size_t check = in.size() < 4 ? in.size() : 4;
      static constexpr uint8_t kMagicBytes[4] = {'L', 'P', 'N', '1'};
      if (std::memcmp(in.data(), kMagicBytes, check) != 0) {
        *error = "bad frame magic";
        return FrameParse::kBad;
      }
    }
    return FrameParse::kNeedMore;
  }
  if (ReadU32(in.data()) != kFrameMagic) {
    *error = "bad frame magic";
    return FrameParse::kBad;
  }
  if (in[5] != 0 || in[6] != 0 || in[7] != 0) {
    *error = "nonzero reserved header bytes";
    return FrameParse::kBad;
  }
  uint8_t raw_type = in[4];
  if (raw_type < static_cast<uint8_t>(MsgType::kHello) ||
      raw_type > static_cast<uint8_t>(MsgType::kGoodbye)) {
    *error = "unknown message type " + std::to_string(raw_type);
    return FrameParse::kBad;
  }
  uint32_t payload_len = ReadU32(in.data() + 12);
  if (payload_len > max_payload) {
    *error = "payload length " + std::to_string(payload_len) +
             " exceeds limit " + std::to_string(max_payload);
    return FrameParse::kBad;
  }
  if (in.size() < kFrameHeaderBytes + payload_len) {
    return FrameParse::kNeedMore;
  }
  std::span<const uint8_t> payload = in.subspan(kFrameHeaderBytes, payload_len);
  uint64_t hash = Fnv1a64(in.first(16));
  hash = Fnv1a64(payload, hash);
  if (hash != ReadU64(in.data() + 16)) {
    *error = "frame checksum mismatch";
    return FrameParse::kBad;
  }
  out->type = static_cast<MsgType>(raw_type);
  out->request_id = ReadU32(in.data() + 8);
  out->payload.assign(payload.begin(), payload.end());
  *consumed = kFrameHeaderBytes + payload_len;
  return FrameParse::kFrame;
}

std::vector<uint8_t> EncodeHello(const HelloPayload& hello) {
  std::vector<uint8_t> out;
  PutU32(hello.version, &out);
  PutString(hello.software, &out);
  PutU32(hello.max_inflight, &out);
  return out;
}

std::vector<uint8_t> EncodeQuery(const QueryPayload& query) {
  std::vector<uint8_t> out;
  PutString(query.corpus, &out);
  PutString(query.query, &out);
  return out;
}

std::vector<uint8_t> EncodeEnd(const EndPayload& end) {
  std::vector<uint8_t> out;
  PutU32(static_cast<uint32_t>(end.code), &out);
  PutString(end.message, &out);
  PutU64(end.total_rows, &out);
  return out;
}

std::vector<uint8_t> EncodeError(const ErrorPayload& error) {
  std::vector<uint8_t> out;
  PutU32(static_cast<uint32_t>(error.code), &out);
  PutString(error.message, &out);
  return out;
}

std::vector<uint8_t> EncodeBatch(std::span<const Hit> hits) {
  std::vector<uint8_t> out;
  out.reserve(4 + hits.size() * 8);
  PutU32(static_cast<uint32_t>(hits.size()), &out);
  for (const Hit& hit : hits) {
    PutU32(static_cast<uint32_t>(hit.tid), &out);
    PutU32(static_cast<uint32_t>(hit.id), &out);
  }
  return out;
}

Result<HelloPayload> DecodeHello(std::span<const uint8_t> payload) {
  PayloadReader r(payload);
  HelloPayload hello;
  if (!r.TryU32(&hello.version) || !r.TryString(&hello.software) ||
      !r.TryU32(&hello.max_inflight) || !r.Done()) {
    return Malformed("HELLO");
  }
  return hello;
}

Result<QueryPayload> DecodeQuery(std::span<const uint8_t> payload) {
  PayloadReader r(payload);
  QueryPayload query;
  if (!r.TryString(&query.corpus) || !r.TryString(&query.query) || !r.Done()) {
    return Malformed("PREPARE/EXECUTE");
  }
  return query;
}

Result<EndPayload> DecodeEnd(std::span<const uint8_t> payload) {
  PayloadReader r(payload);
  EndPayload end;
  uint32_t code = 0;
  if (!r.TryU32(&code) || !r.TryString(&end.message) ||
      !r.TryU64(&end.total_rows) || !r.Done()) {
    return Malformed("STREAM_END");
  }
  end.code = static_cast<WireCode>(code);
  return end;
}

Result<ErrorPayload> DecodeError(std::span<const uint8_t> payload) {
  PayloadReader r(payload);
  ErrorPayload error;
  uint32_t code = 0;
  if (!r.TryU32(&code) || !r.TryString(&error.message) || !r.Done()) {
    return Malformed("ERROR");
  }
  error.code = static_cast<WireCode>(code);
  return error;
}

Result<std::vector<Hit>> DecodeBatch(std::span<const uint8_t> payload) {
  PayloadReader r(payload);
  uint32_t nrows = 0;
  if (!r.TryU32(&nrows) || r.Remaining() != size_t{nrows} * 8) {
    return Malformed("STREAM_BATCH");
  }
  std::vector<Hit> hits;
  hits.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    uint32_t tid = 0;
    uint32_t id = 0;
    r.TryU32(&tid);
    r.TryU32(&id);
    hits.push_back(Hit{static_cast<int32_t>(tid), static_cast<int32_t>(id)});
  }
  return hits;
}

std::string_view MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "HELLO";
    case MsgType::kPrepare:
      return "PREPARE";
    case MsgType::kExecute:
      return "EXECUTE";
    case MsgType::kStreamBatch:
      return "STREAM_BATCH";
    case MsgType::kStreamEnd:
      return "STREAM_END";
    case MsgType::kCancel:
      return "CANCEL";
    case MsgType::kError:
      return "ERROR";
    case MsgType::kPing:
      return "PING";
    case MsgType::kGoodbye:
      return "GOODBYE";
  }
  return "UNKNOWN";
}

}  // namespace net
}  // namespace lpath
