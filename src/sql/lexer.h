// Tokenizer for the SQL subset emitted by plan/sql_gen (SELECT DISTINCT /
// FROM / WHERE with aliases, comparisons, AND/OR/NOT, EXISTS subqueries).

#ifndef LPATHDB_SQL_LEXER_H_
#define LPATHDB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lpath {
namespace sql {

enum class TokenKind {
  kIdent,    // keywords resolved by the parser, case-insensitively
  kNumber,
  kString,   // '...' with '' escaping
  kDot,
  kComma,
  kLParen,
  kRParen,
  kEq,       // =
  kNe,       // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // ident (original case) or string contents
  int64_t number = 0;
  size_t pos = 0;     // byte offset, for error messages
};

/// Tokenizes the whole input. Fails on unexpected characters or an
/// unterminated string.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_LEXER_H_
