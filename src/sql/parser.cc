#include "sql/parser.h"

#include <map>
#include <optional>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace lpath {
namespace sql {

namespace {

PlanCol* LookupColumn(const std::string& lower, PlanCol* storage) {
  static const std::map<std::string, PlanCol> kCols = {
      {"tid", PlanCol::kTid},     {"left", PlanCol::kLeft},
      {"right", PlanCol::kRight}, {"depth", PlanCol::kDepth},
      {"id", PlanCol::kId},       {"pid", PlanCol::kPid},
      {"name", PlanCol::kName},   {"value", PlanCol::kValue},
      {"kind", PlanCol::kKind},
  };
  auto it = kCols.find(lower);
  if (it == kCols.end()) return nullptr;
  *storage = it->second;
  return storage;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExecPlan> ParseStatement() {
    LPATH_ASSIGN_OR_RETURN(ExecPlan plan,
                           ParseSelect(/*outer=*/nullptr, /*exists=*/false));
    if (!IsEnd()) return Error("unexpected trailing input");
    return plan;
  }

 private:
  using AliasMap = std::map<std::string, int>;

  const Token& Cur() const { return tokens_[idx_]; }
  bool IsEnd() const { return Cur().kind == TokenKind::kEnd; }
  void Advance() {
    if (!IsEnd()) ++idx_;
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("SQL parse error at offset " +
                                   std::to_string(Cur().pos) + ": " + what);
  }
  bool EatKeyword(std::string_view kw) {
    if (Cur().kind != TokenKind::kIdent) return false;
    if (AsciiToLower(Cur().text) != AsciiToLower(std::string(kw))) return false;
    Advance();
    return true;
  }
  bool PeekKeyword(std::string_view kw) const {
    return Cur().kind == TokenKind::kIdent &&
           AsciiToLower(Cur().text) == AsciiToLower(std::string(kw));
  }
  bool Eat(TokenKind k) {
    if (Cur().kind != k) return false;
    Advance();
    return true;
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Cur().kind != TokenKind::kIdent) return Error("expected " + what);
    std::string s = Cur().text;
    Advance();
    return s;
  }

  /// Parses "SELECT DISTINCT x.tid, x.id" or "SELECT 1" plus FROM/WHERE.
  Result<ExecPlan> ParseSelect(const AliasMap* outer, bool exists) {
    if (!EatKeyword("SELECT")) return Error("expected SELECT");
    ExecPlan plan;
    std::string out_alias;
    if (exists) {
      if (Cur().kind != TokenKind::kNumber || Cur().number != 1) {
        return Error("expected SELECT 1 in EXISTS subquery");
      }
      Advance();
    } else {
      if (!EatKeyword("DISTINCT")) return Error("expected DISTINCT");
      LPATH_ASSIGN_OR_RETURN(out_alias, ExpectIdent("output alias"));
      if (!Eat(TokenKind::kDot)) return Error("expected '.'");
      LPATH_ASSIGN_OR_RETURN(std::string c1, ExpectIdent("column"));
      if (AsciiToLower(c1) != "tid") return Error("projection must be tid, id");
      if (!Eat(TokenKind::kComma)) return Error("expected ','");
      LPATH_ASSIGN_OR_RETURN(std::string a2, ExpectIdent("output alias"));
      if (a2 != out_alias) {
        return Error("projection must use a single alias");
      }
      if (!Eat(TokenKind::kDot)) return Error("expected '.'");
      LPATH_ASSIGN_OR_RETURN(std::string c2, ExpectIdent("column"));
      if (AsciiToLower(c2) != "id") return Error("projection must be tid, id");
    }

    if (!EatKeyword("FROM")) return Error("expected FROM");
    AliasMap aliases;
    for (;;) {
      LPATH_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      (void)table;  // single-relation dialect; the name is not interpreted
      if (!EatKeyword("AS")) return Error("expected AS");
      LPATH_ASSIGN_OR_RETURN(std::string alias, ExpectIdent("alias"));
      if (aliases.count(alias)) return Error("duplicate alias " + alias);
      const int var = static_cast<int>(aliases.size());
      aliases[alias] = var;
      if (!Eat(TokenKind::kComma)) break;
    }
    plan.num_vars = static_cast<int>(aliases.size());

    if (!exists) {
      auto it = aliases.find(out_alias);
      if (it == aliases.end()) return Error("unknown output alias");
      plan.output_var = it->second;
    }

    if (EatKeyword("WHERE")) {
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> where,
                             ParseOr(aliases, outer));
      Flatten(std::move(where), &plan);
    }
    return plan;
  }

  /// Distributes a parsed boolean tree into conjuncts + filters.
  static void Flatten(std::unique_ptr<BoolExpr> e, ExecPlan* plan) {
    if (e->kind == BoolExpr::Kind::kAnd) {
      Flatten(std::move(e->lhs), plan);
      Flatten(std::move(e->rhs), plan);
      return;
    }
    if (e->kind == BoolExpr::Kind::kCmp) {
      plan->conjuncts.push_back(e->cmp);
      return;
    }
    plan->filters.push_back(std::move(e));
  }

  Result<std::unique_ptr<BoolExpr>> ParseOr(const AliasMap& aliases,
                                            const AliasMap* outer) {
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> lhs,
                           ParseAnd(aliases, outer));
    while (PeekKeyword("OR")) {
      Advance();
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> rhs,
                             ParseAnd(aliases, outer));
      auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kOr);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<BoolExpr>> ParseAnd(const AliasMap& aliases,
                                             const AliasMap* outer) {
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> lhs,
                           ParseUnary(aliases, outer));
    while (PeekKeyword("AND")) {
      Advance();
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> rhs,
                             ParseUnary(aliases, outer));
      auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kAnd);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<BoolExpr>> ParseUnary(const AliasMap& aliases,
                                               const AliasMap* outer) {
    if (EatKeyword("NOT")) {
      if (!Eat(TokenKind::kLParen)) return Error("expected '(' after NOT");
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> inner,
                             ParseOr(aliases, outer));
      if (!Eat(TokenKind::kRParen)) return Error("expected ')'");
      auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kNot);
      node->lhs = std::move(inner);
      return node;
    }
    if (EatKeyword("EXISTS")) {
      if (!Eat(TokenKind::kLParen)) return Error("expected '(' after EXISTS");
      LPATH_ASSIGN_OR_RETURN(ExecPlan sub,
                             ParseSelect(&aliases, /*exists=*/true));
      if (!Eat(TokenKind::kRParen)) return Error("expected ')'");
      auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kExists);
      node->sub = std::make_unique<ExecPlan>(std::move(sub));
      return node;
    }
    if (Eat(TokenKind::kLParen)) {
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> inner,
                             ParseOr(aliases, outer));
      if (!Eat(TokenKind::kRParen)) return Error("expected ')'");
      return inner;
    }
    // Comparison.
    LPATH_ASSIGN_OR_RETURN(Operand lhs, ParseOperand(aliases, outer));
    CmpOp op;
    switch (Cur().kind) {
      case TokenKind::kEq: op = CmpOp::kEq; break;
      case TokenKind::kNe: op = CmpOp::kNe; break;
      case TokenKind::kLt: op = CmpOp::kLt; break;
      case TokenKind::kLe: op = CmpOp::kLe; break;
      case TokenKind::kGt: op = CmpOp::kGt; break;
      case TokenKind::kGe: op = CmpOp::kGe; break;
      default: return Error("expected comparison operator");
    }
    Advance();
    LPATH_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(aliases, outer));

    // Normalize: the executor requires a column on the left.
    if (lhs.is_literal()) {
      if (rhs.is_literal()) return Error("literal-only comparison");
      std::swap(lhs, rhs);
      switch (op) {
        case CmpOp::kLt: op = CmpOp::kGt; break;
        case CmpOp::kLe: op = CmpOp::kGe; break;
        case CmpOp::kGt: op = CmpOp::kLt; break;
        case CmpOp::kGe: op = CmpOp::kLe; break;
        default: break;
      }
    }
    auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kCmp);
    node->cmp = Conjunct{std::move(lhs), op, std::move(rhs)};
    return node;
  }

  Result<Operand> ParseOperand(const AliasMap& aliases, const AliasMap* outer) {
    if (Cur().kind == TokenKind::kNumber) {
      Operand op = Operand::Number(Cur().number);
      Advance();
      return op;
    }
    if (Cur().kind == TokenKind::kString) {
      Operand op = Operand::String(Cur().text);
      Advance();
      return op;
    }
    LPATH_ASSIGN_OR_RETURN(std::string alias, ExpectIdent("alias"));
    if (!Eat(TokenKind::kDot)) return Error("expected '.' after alias");
    LPATH_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column"));
    PlanCol pc;
    if (LookupColumn(AsciiToLower(col), &pc) == nullptr) {
      return Error("unknown column " + col);
    }
    auto it = aliases.find(alias);
    if (it != aliases.end()) return Operand::Column(it->second, pc);
    if (outer != nullptr) {
      auto oit = outer->find(alias);
      if (oit != outer->end()) {
        return Operand::Column(Operand::kOuterVarBase + oit->second, pc);
      }
    }
    return Error("unknown alias " + alias);
  }

  std::vector<Token> tokens_;
  size_t idx_ = 0;
};

}  // namespace

Result<ExecPlan> ParseSql(std::string_view text) {
  LPATH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace lpath
