// Canonical structural plan fingerprints.
//
// PlanFingerprint hashes the *structure* of an ExecPlan — operators,
// columns, literals, and the variable-reference shape — into a
// deterministic 64-bit value: two compilations of structurally identical
// queries (different spellings, different quoting, literal-first vs
// column-first comparisons, or the same subtree hanging off different
// parent variables) produce the same fingerprint in every process run.
// Nothing address- or allocation-dependent is hashed, so the value is
// stable across runs and ASLR, and can key caches that outlive any one
// plan object.
//
// Canonicalization applied on the fly (the plan itself is not modified):
//   - literal-first comparisons are mirrored (`'VB' = a.name` hashes as
//     `a.name = 'VB'`), matching the optimizer's NormalizeOrientation;
//   - outer references *escaping the hashed root* (depth-0 correlation
//     variables of an EXISTS subtree) are alpha-renamed by first
//     appearance, so a subtree correlating on parent var 3 equals the
//     same subtree correlating on parent var 0. Outer references of
//     nested subplans target variables *inside* the hashed tree and are
//     structural, so they hash as-is. Local variable indices are
//     positional (the compiler assigns them deterministically) and hash
//     as-is too.
//
// PlanEquals walks two plans in lockstep under the same canonicalization
// — the collision check run before two fingerprint-equal plans are
// allowed to share a cache entry or a memo key space. Fingerprint
// equality is necessary but not sufficient; PlanEquals is the authority.
//
// The same functions serve both cache levels: the service fingerprints
// the *compiled* (unresolved) plan to key the prepared-plan cache
// (corpus-independent, so the same value works across corpora), and the
// optimizer fingerprints *resolved* EXISTS subtrees to key the
// snapshot-scoped subplan memo (symbol ids are per-relation, which is
// exactly the isolation the memo contract needs).

#ifndef LPATHDB_SQL_FINGERPRINT_H_
#define LPATHDB_SQL_FINGERPRINT_H_

#include <cstdint>

#include "plan/exec_plan.h"

namespace lpath {
namespace sql {

/// Deterministic structural hash of `plan` (see file comment).
uint64_t PlanFingerprint(const ExecPlan& plan);

/// Structural equality under the same canonicalization as PlanFingerprint.
/// Used to verify fingerprint matches before sharing plans or memos.
bool PlanEquals(const ExecPlan& a, const ExecPlan& b);

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_FINGERPRINT_H_
