#include "sql/optimizer.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <set>

#include "sql/fingerprint.h"

namespace lpath {
namespace sql {

namespace {

std::atomic<uint64_t> g_prepare_calls{0};

bool IsLocal(const Operand& o) { return !o.is_literal() && !o.is_outer(); }

/// Collects this plan's local variables referenced by an expression,
/// including the correlation (outer) references made by nested subplans.
void CollectVars(const Conjunct& c, std::set<int>* vars) {
  if (IsLocal(c.lhs)) vars->insert(c.lhs.var);
  if (IsLocal(c.rhs)) vars->insert(c.rhs.var);
}

void CollectOuterAsLocal(const ExecPlan& sub, std::set<int>* vars);

void CollectVars(const BoolExpr& e, std::set<int>* vars) {
  switch (e.kind) {
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr:
      CollectVars(*e.lhs, vars);
      CollectVars(*e.rhs, vars);
      return;
    case BoolExpr::Kind::kNot:
      CollectVars(*e.lhs, vars);
      return;
    case BoolExpr::Kind::kCmp:
      CollectVars(e.cmp, vars);
      return;
    case BoolExpr::Kind::kExists:
      CollectOuterAsLocal(*e.sub, vars);
      return;
  }
}

/// The outer references inside `sub` are *our* local variables.
void CollectOuterAsLocal(const ExecPlan& sub, std::set<int>* vars) {
  auto visit_op = [&](const Operand& o) {
    if (o.is_outer()) vars->insert(o.outer_index());
  };
  for (const Conjunct& c : sub.conjuncts) {
    visit_op(c.lhs);
    visit_op(c.rhs);
  }
  std::vector<const BoolExpr*> stack;
  for (const auto& f : sub.filters) stack.push_back(f.get());
  while (!stack.empty()) {
    const BoolExpr* e = stack.back();
    stack.pop_back();
    switch (e->kind) {
      case BoolExpr::Kind::kAnd:
      case BoolExpr::Kind::kOr:
        stack.push_back(e->lhs.get());
        stack.push_back(e->rhs.get());
        break;
      case BoolExpr::Kind::kNot:
        stack.push_back(e->lhs.get());
        break;
      case BoolExpr::Kind::kCmp:
        visit_op(e->cmp.lhs);
        visit_op(e->cmp.rhs);
        break;
      case BoolExpr::Kind::kExists:
        // A nested subplan's outer refs point at *sub*, not at us.
        break;
    }
  }
}

/// Mirror of a comparison operator, for swapping a conjunct's sides.
CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;
  }
}

/// Walks the plan's filter trees, applying `cmp_fn` to every comparison
/// and `sub_fn` to every EXISTS subplan (one level; `sub_fn` recurses if
/// it wants the whole nest). The single traversal the literal-resolution
/// and orientation passes share.
Status ForEachFilterNode(ExecPlan* plan,
                         const std::function<Status(Conjunct*)>& cmp_fn,
                         const std::function<Status(ExecPlan*)>& sub_fn) {
  std::vector<BoolExpr*> stack;
  for (auto& f : plan->filters) stack.push_back(f.get());
  while (!stack.empty()) {
    BoolExpr* e = stack.back();
    stack.pop_back();
    switch (e->kind) {
      case BoolExpr::Kind::kAnd:
      case BoolExpr::Kind::kOr:
        stack.push_back(e->lhs.get());
        stack.push_back(e->rhs.get());
        break;
      case BoolExpr::Kind::kNot:
        stack.push_back(e->lhs.get());
        break;
      case BoolExpr::Kind::kCmp:
        LPATH_RETURN_IF_ERROR(cmp_fn(&e->cmp));
        break;
      case BoolExpr::Kind::kExists:
        LPATH_RETURN_IF_ERROR(sub_fn(e->sub.get()));
        break;
    }
  }
  return Status::OK();
}

/// Rewrites string literals to dictionary symbol ids in place; validates
/// that string comparisons use only = / !=. An unknown symbol in an
/// equality empties the plan only when the equality is a top-level
/// conjunct (an AND leg that can never hold) and `always_empty` is
/// non-null. Inside OR/NOT filter trees — and throughout EXISTS subplans,
/// which pass a null flag — the comparison is rewritten to an
/// unsatisfiable sentinel and evaluation decides: `x = 'unknown' OR
/// <other>` must still consider <other>, and an impossible EXISTS simply
/// enumerates nothing.
Status ResolveLiterals(ExecPlan* plan, const Interner& interner,
                       bool* always_empty) {
  // `empty_flag` is the enclosing plan's always_empty for top-level
  // conjuncts and null for comparisons inside filter trees.
  auto resolve = [&interner](Conjunct* c, bool* empty_flag) -> Status {
    for (Operand* o : {&c->lhs, &c->rhs}) {
      if (!o->is_literal() || !o->is_string) continue;
      if (c->op != CmpOp::kEq && c->op != CmpOp::kNe) {
        return Status::NotSupported(
            "string literals support only = and != comparisons");
      }
      const Symbol sym = interner.Lookup(o->str);
      if (sym == kNoSymbol) {
        if (c->op == CmpOp::kEq && empty_flag != nullptr) *empty_flag = true;
        // -1 compares equal to no column (symbols are non-negative), so an
        // unknown = is always false and an unknown != always true — the
        // same answers a known-but-absent word would give. (kNoSymbol
        // itself would falsely match the value column of element rows,
        // which store kNoSymbol for "no value".)
        o->num = -1;
      } else {
        o->num = static_cast<int64_t>(sym);
      }
      o->is_string = false;  // now a resolved symbol id
    }
    return Status::OK();
  };
  for (Conjunct& c : plan->conjuncts) {
    LPATH_RETURN_IF_ERROR(resolve(&c, always_empty));
  }
  return ForEachFilterNode(
      plan, [&resolve](Conjunct* c) { return resolve(c, nullptr); },
      [&interner](ExecPlan* sub) {
        return ResolveLiterals(sub, interner, /*always_empty=*/nullptr);
      });
}

/// Puts the column reference on the lhs of literal-first comparisons
/// (`'VB' = a.name`), mirroring the operator. The fact harvesters and the
/// access-path derivation inspect only var-on-lhs conjuncts, so without
/// this a literal-first spelling silently degrades to a full scan. The SQL
/// parser normalizes as it parses; plans built programmatically may not be.
void NormalizeOrientation(ExecPlan* plan) {
  auto flip = [](Conjunct* c) {
    if (!c->lhs.is_literal() || c->rhs.is_literal()) return;
    std::swap(c->lhs, c->rhs);
    c->op = MirrorOp(c->op);
  };
  for (Conjunct& c : plan->conjuncts) flip(&c);
  (void)ForEachFilterNode(
      plan,
      [&flip](Conjunct* c) {
        flip(c);
        return Status::OK();
      },
      [](ExecPlan* sub) {
        NormalizeOrientation(sub);
        return Status::OK();
      });
}

/// Static per-variable access facts harvested from literal conjuncts.
struct VarFacts {
  Symbol name = kNoSymbol;
  bool has_name = false;
  Symbol value = kNoSymbol;
  bool has_value = false;
  int kind = -1;
  bool has_pid0 = false;  // pid = 0 (root)
};

std::vector<VarFacts> HarvestFacts(const ExecPlan& plan) {
  std::vector<VarFacts> facts(plan.num_vars);
  for (const Conjunct& c : plan.conjuncts) {
    if (!IsLocal(c.lhs) || !c.rhs.is_literal() || c.op != CmpOp::kEq) continue;
    VarFacts& f = facts[c.lhs.var];
    switch (c.lhs.col) {
      case PlanCol::kName:
        f.name = static_cast<Symbol>(c.rhs.num);
        f.has_name = true;
        break;
      case PlanCol::kValue:
        f.value = static_cast<Symbol>(c.rhs.num);
        f.has_value = true;
        break;
      case PlanCol::kKind:
        f.kind = static_cast<int>(c.rhs.num);
        break;
      case PlanCol::kPid:
        if (c.rhs.num == 0) f.has_pid0 = true;
        break;
      default:
        break;
    }
  }
  return facts;
}

/// Rows a standalone scan of `v`'s best access path yields: the value or
/// tag-run cardinality, the whole relation for wildcards, capped at one
/// row per tree for roots. Also the service's shardability estimate.
double BaseCardinality(const VarFacts& f, const NodeRelation& rel) {
  const double trees = std::max<double>(1.0, rel.tree_count());
  double base;
  if (f.has_value) {
    base = std::max<double>(1.0, rel.ValueCardinality(f.value));
  } else if (f.has_name) {
    base = std::max<double>(1.0, rel.NameCardinality(f.name));
  } else {
    base = std::max<double>(1.0, rel.row_count());
  }
  if (f.has_pid0) base = std::min(base, trees);
  return base;
}

/// Estimated rows produced when binding `v` given the `bound` set (join
/// links give discounts). All heuristic — the point is the *ranking*.
double EstimateCost(const ExecPlan& plan, const std::vector<VarFacts>& facts,
                    const NodeRelation& rel, int v,
                    const std::vector<bool>& bound, bool anything_bound) {
  const VarFacts& f = facts[v];
  const double trees = std::max<double>(1.0, rel.tree_count());
  const double base = BaseCardinality(f, rel);

  if (!anything_bound) return base;

  // Join-link discount: the best access path available through a conjunct
  // against an already-bound variable (or an outer reference, always bound).
  double best = base / trees;  // per-tree scan via the tid link
  for (const Conjunct& c : plan.conjuncts) {
    const Operand* mine = nullptr;
    const Operand* other = nullptr;
    if (IsLocal(c.lhs) && c.lhs.var == v) {
      mine = &c.lhs;
      other = &c.rhs;
    } else if (IsLocal(c.rhs) && c.rhs.var == v) {
      mine = &c.rhs;
      other = &c.lhs;
    } else {
      continue;
    }
    const bool other_ready =
        other->is_literal() || other->is_outer() ||
        (IsLocal(*other) && bound[other->var]);
    if (!other_ready) continue;
    double est = base;
    switch (mine->col) {
      case PlanCol::kId:
        if (c.op == CmpOp::kEq) est = 1.0;
        break;
      case PlanCol::kPid:
        if (c.op == CmpOp::kEq) est = 4.0;
        break;
      case PlanCol::kLeft:
      case PlanCol::kRight:
        if (c.op == CmpOp::kEq) {
          est = 3.0;  // immediate axes: a handful of nodes share an edge
        } else {
          est = std::max(1.0, base / trees / 2.0);  // range scan
        }
        break;
      default:
        continue;
    }
    best = std::min(best, est);
  }
  return best;
}

std::vector<int> ChooseOrder(const ExecPlan& plan,
                             const std::vector<VarFacts>& facts,
                             const NodeRelation& rel,
                             ExecOptions::JoinOrder mode) {
  const int n = plan.num_vars;
  std::vector<int> order;
  order.reserve(n);
  if (mode == ExecOptions::JoinOrder::kLeftToRight) {
    for (int v = 0; v < n; ++v) order.push_back(v);
    return order;
  }
  std::vector<bool> bound(n, false);
  for (int step = 0; step < n; ++step) {
    int best_var = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      if (bound[v]) continue;
      const double cost = EstimateCost(plan, facts, rel, v, bound, step > 0);
      if (cost < best_cost) {
        best_cost = cost;
        best_var = v;
      }
    }
    bound[best_var] = true;
    order.push_back(best_var);
  }
  return order;
}

/// Position at which a conjunct becomes checkable: the max position of its
/// local variables (0 if it references none).
int ReadyPos(const Conjunct& c, const std::vector<int>& pos_of) {
  int pos = 0;
  if (IsLocal(c.lhs)) pos = std::max(pos, pos_of[c.lhs.var]);
  if (IsLocal(c.rhs)) pos = std::max(pos, pos_of[c.rhs.var]);
  return pos;
}

/// Orients a conjunct so its lhs is the variable bound at `pos` (when that
/// variable participates), which is what the access-path derivation scans.
Conjunct Orient(const Conjunct& c, int var_at_pos) {
  if (IsLocal(c.lhs) && c.lhs.var == var_at_pos) return c;
  if (IsLocal(c.rhs) && c.rhs.var == var_at_pos) {
    Conjunct m;
    m.lhs = c.rhs;
    m.rhs = c.lhs;
    m.op = MirrorOp(c.op);
    return m;
  }
  return c;
}

Result<std::unique_ptr<PreparedPlan>> PrepareResolved(
    ExecPlan plan, const NodeRelation& rel, const ExecOptions& options,
    bool always_empty) {
  auto pp = std::make_unique<PreparedPlan>();
  pp->always_empty = always_empty;
  pp->plan = std::move(plan);
  const ExecPlan& p = pp->plan;

  const std::vector<VarFacts> facts = HarvestFacts(p);
  pp->order = ChooseOrder(p, facts, rel, options.join_order);
  pp->root_cardinality =
      pp->order.empty()
          ? 0
          : static_cast<size_t>(BaseCardinality(facts[pp->order[0]], rel));
  pp->pos_of.assign(p.num_vars, 0);
  for (int pos = 0; pos < static_cast<int>(pp->order.size()); ++pos) {
    pp->pos_of[pp->order[pos]] = pos;
  }
  pp->output_pos = p.num_vars > 0 ? pp->pos_of[p.output_var] : 0;

  pp->conjuncts_at.resize(std::max(1, p.num_vars));
  for (const Conjunct& c : p.conjuncts) {
    const int pos = ReadyPos(c, pp->pos_of);
    pp->conjuncts_at[pos].push_back(Orient(c, pp->order.empty() ? -1 : pp->order[pos]));
  }
  // tid equivalence classes (union-find over tid = tid conjuncts).
  {
    std::vector<int> parent(p.num_vars);
    for (int v = 0; v < p.num_vars; ++v) parent[v] = v;
    std::function<int(int)> find = [&](int v) {
      while (parent[v] != v) v = parent[v] = parent[parent[v]];
      return v;
    };
    for (const Conjunct& c : p.conjuncts) {
      if (c.op != CmpOp::kEq) continue;
      if (c.lhs.col != PlanCol::kTid || c.rhs.col != PlanCol::kTid) continue;
      if (IsLocal(c.lhs) && IsLocal(c.rhs)) {
        parent[find(c.lhs.var)] = find(c.rhs.var);
      }
    }
    pp->tid_class.assign(p.num_vars, -1);
    for (int v = 0; v < p.num_vars; ++v) pp->tid_class[v] = find(v);
    pp->class_outer_tid.assign(p.num_vars, Operand{});
    pp->class_has_outer.assign(p.num_vars, 0);
    for (const Conjunct& c : p.conjuncts) {
      if (c.op != CmpOp::kEq) continue;
      if (c.lhs.col != PlanCol::kTid || c.rhs.col != PlanCol::kTid) continue;
      const Operand* local = nullptr;
      const Operand* outer = nullptr;
      if (IsLocal(c.lhs) && c.rhs.is_outer()) {
        local = &c.lhs;
        outer = &c.rhs;
      } else if (IsLocal(c.rhs) && c.lhs.is_outer()) {
        local = &c.rhs;
        outer = &c.lhs;
      } else {
        continue;
      }
      const int cls = pp->tid_class[local->var];
      pp->class_outer_tid[cls] = *outer;
      pp->class_has_outer[cls] = 1;
    }
  }

  pp->filters_at.resize(std::max(1, p.num_vars));
  for (const auto& f : p.filters) {
    std::set<int> vars;
    CollectVars(*f, &vars);
    int pos = 0;
    for (int v : vars) pos = std::max(pos, pp->pos_of[v]);
    pp->filters_at[pos].push_back(f.get());
  }

  // Prepare subplans recursively.
  std::vector<const BoolExpr*> stack;
  for (const auto& f : p.filters) stack.push_back(f.get());
  while (!stack.empty()) {
    const BoolExpr* e = stack.back();
    stack.pop_back();
    switch (e->kind) {
      case BoolExpr::Kind::kAnd:
      case BoolExpr::Kind::kOr:
        stack.push_back(e->lhs.get());
        stack.push_back(e->rhs.get());
        break;
      case BoolExpr::Kind::kNot:
        stack.push_back(e->lhs.get());
        break;
      case BoolExpr::Kind::kCmp:
        break;
      case BoolExpr::Kind::kExists: {
        LPATH_ASSIGN_OR_RETURN(
            std::unique_ptr<PreparedPlan> sub,
            PrepareResolved(e->sub->Clone(), rel, options, false));
        std::set<int> outer;
        CollectOuterAsLocal(*e->sub, &outer);
        const int outer_var = outer.size() == 1 ? *outer.begin() : -1;
        pp->sub_outer_var[e] = outer_var;
        if (outer_var >= 0) {
          // Memoizable subtree: fingerprint the resolved form (symbol ids,
          // canonical orientation, correlation variable alpha-renamed) so
          // structurally equal subtrees in *other* plans prepared against
          // this relation can share one memo key space.
          pp->sub_fingerprint[e] = PlanFingerprint(*e->sub);
        }
        pp->subs.emplace(e, std::move(sub));
        break;
      }
    }
  }
  return pp;
}

}  // namespace

Result<std::unique_ptr<PreparedPlan>> Prepare(const ExecPlan& plan,
                                              const NodeRelation& rel,
                                              const ExecOptions& options) {
  g_prepare_calls.fetch_add(1, std::memory_order_relaxed);
  // Fingerprint the unresolved input: the value is corpus-independent, so
  // a plan cache can recognize this structure no matter which relation the
  // entry was prepared against.
  const uint64_t fingerprint = PlanFingerprint(plan);
  ExecPlan resolved = plan.Clone();
  NormalizeOrientation(&resolved);
  bool always_empty = false;
  LPATH_RETURN_IF_ERROR(
      ResolveLiterals(&resolved, rel.interner(), &always_empty));
  LPATH_ASSIGN_OR_RETURN(
      std::unique_ptr<PreparedPlan> pp,
      PrepareResolved(std::move(resolved), rel, options, always_empty));
  pp->fingerprint = fingerprint;
  return pp;
}

uint64_t PrepareCallCount() {
  return g_prepare_calls.load(std::memory_order_relaxed);
}

}  // namespace sql
}  // namespace lpath
