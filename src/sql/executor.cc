#include "sql/executor.h"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "storage/codec.h"

namespace lpath {
namespace sql {

namespace {

constexpr int32_t kMinInt = std::numeric_limits<int32_t>::min();
constexpr int32_t kMaxInt = std::numeric_limits<int32_t>::max();

bool IsLocal(const Operand& o) { return !o.is_literal() && !o.is_outer(); }

/// Chunk size of the batch kernel — one codec block, so a fused decode of
/// the leading scan column fills exactly one chunk.
constexpr uint32_t kBatchRows = static_cast<uint32_t>(kCodecBlockValues);

// The batch kernel indexes relation columns by the plan's column ids; the
// two enums must stay aligned for the PlanCol -> RelCol cast below.
static_assert(static_cast<int>(PlanCol::kTid) == static_cast<int>(RelCol::kTid) &&
              static_cast<int>(PlanCol::kValue) ==
                  static_cast<int>(RelCol::kValue) &&
              static_cast<int>(PlanCol::kKind) == static_cast<int>(RelCol::kKind));

/// One vectorizable predicate: column `col` of the enumerating variable
/// compared against a value that is constant for the whole enumeration.
struct BatchFilter {
  PlanCol col = PlanCol::kTid;
  CmpOp op = CmpOp::kEq;
  int64_t rhs = 0;
};

/// Per-recursion-depth scratch of the batch kernel. The selection vector
/// must survive the recursive Extend calls made for its survivors (a
/// deeper variable may run its own batch scan meanwhile), so each depth
/// acquires its own buffer from the Runner's pool.
struct BatchBuf {
  std::array<uint32_t, kBatchRows> sel;     ///< chunk-relative survivors
  std::array<uint32_t, kBatchRows> decode;  ///< fused-decode scratch
  std::vector<BatchFilter> filters;         ///< vectorized predicates
  std::vector<const Conjunct*> tail;        ///< checked scalar per survivor
};

/// Runs `run` with a comparator capturing (op, rhs) — hoists the CmpOp
/// dispatch out of the per-row loop.
template <typename RunFn>
uint32_t WithCmp(CmpOp op, int64_t rhs, RunFn&& run) {
  switch (op) {
    case CmpOp::kEq: return run([rhs](int64_t a) { return a == rhs; });
    case CmpOp::kNe: return run([rhs](int64_t a) { return a != rhs; });
    case CmpOp::kLt: return run([rhs](int64_t a) { return a < rhs; });
    case CmpOp::kLe: return run([rhs](int64_t a) { return a <= rhs; });
    case CmpOp::kGt: return run([rhs](int64_t a) { return a > rhs; });
    case CmpOp::kGe: return run([rhs](int64_t a) { return a >= rhs; });
  }
  return 0;
}

/// One plan's binding frame; frames chain to parents for correlation.
struct Frame {
  const PreparedPlan* pp;
  std::vector<Row> bound;
  const Frame* parent = nullptr;
};

/// Bounds derived for a variable's columns from checkable conjuncts.
struct Bounds {
  bool has_tid = false;
  int32_t tid = 0;
  bool has_id = false;
  int32_t id = 0;
  bool has_pid = false;
  int32_t pid = 0;
  bool has_value = false;
  Symbol value = kNoSymbol;
  int64_t left_lo = kMinInt, left_hi = kMaxInt;    // half-open
  int64_t right_lo = kMinInt, right_hi = kMaxInt;  // half-open
};

class Runner {
 public:
  Runner(const NodeRelation& rel, const ExecOptions& options, ExecStats* stats,
         ExistsMemo* shared_memo, GlobalExistsMemo global)
      : rel_(rel),
        options_(options),
        stats_(stats),
        shared_memo_(shared_memo),
        global_(global) {}

  Status Run(const PreparedPlan& pp, QueryResult* out) {
    return RunShard(pp, 0, kMaxInt, out);
  }

  /// Like Run, but the root plan's first variable enumerates only rows of
  /// trees in [tid_lo, tid_hi). Subplan frames are unaffected: they chase
  /// correlations wherever the bound rows point. A vacuous range leaves
  /// root_pp_ null so serial execution keeps the unclamped fast paths.
  Status RunShard(const PreparedPlan& pp, int32_t tid_lo, int32_t tid_hi,
                  QueryResult* out) {
    if (pp.always_empty) return Status::OK();
    root_pp_ = (tid_lo > 0 || tid_hi < kMaxInt) ? &pp : nullptr;
    shard_lo_ = tid_lo;
    shard_hi_ = tid_hi;
    Frame frame;
    frame.pp = &pp;
    frame.bound.assign(pp.plan.num_vars, kNoRow);
    out_set_.clear();
    Extend(frame, 0, out);
    for (uint64_t key : out_set_) {
      out->hits.push_back(Hit{static_cast<int32_t>(key >> 32),
                              static_cast<int32_t>(key & 0xffffffffu)});
    }
    out->Normalize();
    return Status::OK();
  }

 private:
  int64_t ColValue(Row r, PlanCol col) const {
    switch (col) {
      case PlanCol::kTid: return rel_.tid(r);
      case PlanCol::kLeft: return rel_.left(r);
      case PlanCol::kRight: return rel_.right(r);
      case PlanCol::kDepth: return rel_.depth(r);
      case PlanCol::kId: return rel_.id(r);
      case PlanCol::kPid: return rel_.pid(r);
      case PlanCol::kName: return rel_.name(r);
      case PlanCol::kValue: return rel_.value(r);
      case PlanCol::kKind: return static_cast<int64_t>(rel_.kind(r));
    }
    return 0;
  }

  /// Value of an operand under a frame (literal / local / outer).
  bool OperandValue(const Frame& f, const Operand& o, int64_t* out) const {
    if (o.is_literal()) {
      *out = o.num;
      return true;
    }
    Row r;
    if (o.is_outer()) {
      if (f.parent == nullptr) return false;
      r = f.parent->bound[o.outer_index()];
    } else {
      r = f.bound[o.var];
    }
    if (r == kNoRow) return false;
    *out = ColValue(r, o.col);
    return true;
  }

  static bool Compare(int64_t a, CmpOp op, int64_t b) {
    switch (op) {
      case CmpOp::kEq: return a == b;
      case CmpOp::kNe: return a != b;
      case CmpOp::kLt: return a < b;
      case CmpOp::kLe: return a <= b;
      case CmpOp::kGt: return a > b;
      case CmpOp::kGe: return a >= b;
    }
    return false;
  }

  bool EvalConjunct(const Frame& f, const Conjunct& c) const {
    int64_t a, b;
    if (!OperandValue(f, c.lhs, &a) || !OperandValue(f, c.rhs, &b)) {
      return false;  // unbound operand: cannot hold
    }
    return Compare(a, c.op, b);
  }

  bool EvalBool(Frame& f, const BoolExpr& e) {
    switch (e.kind) {
      case BoolExpr::Kind::kAnd:
        return EvalBool(f, *e.lhs) && EvalBool(f, *e.rhs);
      case BoolExpr::Kind::kOr:
        return EvalBool(f, *e.lhs) || EvalBool(f, *e.rhs);
      case BoolExpr::Kind::kNot:
        return !EvalBool(f, *e.lhs);
      case BoolExpr::Kind::kCmp:
        return EvalConjunct(f, e.cmp);
      case BoolExpr::Kind::kExists:
        return EvalExists(f, e);
    }
    return false;
  }

  bool EvalExists(Frame& f, const BoolExpr& e) {
    const auto sub_it = f.pp->subs.find(&e);
    const PreparedPlan& sub = *sub_it->second;
    // Subplans never carry always_empty: their unknown literals resolve to
    // the unsatisfiable sentinel, so an impossible EXISTS enumerates
    // nothing and evaluates to false here.

    // Memoize on the single correlation variable when there is one. The
    // lookup chain is ordered by cost: the run-private map first (no
    // lock), then the per-plan shared table that spans all morsels of the
    // query and all executions of a cached plan (keyed by node address),
    // then the snapshot-scoped subplan memo keyed by the subtree's
    // structural fingerprint, which holds answers derived by *other*
    // top-level plans sharing this subtree. A hit at any level is copied
    // into the cheaper levels so their locks are paid once per (run,
    // binding).
    const int outer_var = f.pp->sub_outer_var.at(&e);
    uint64_t memo_key = 0;
    std::unordered_map<uint64_t, bool>* memo = nullptr;
    const uint64_t plan_key = reinterpret_cast<uintptr_t>(&e);
    uint64_t global_key = 0;
    bool has_global = false;
    if (outer_var >= 0) {
      memo = &memo_[&e];
      memo_key = f.bound[outer_var];
      auto it = memo->find(memo_key);
      if (it != memo->end()) {
        if (stats_ != nullptr) stats_->memo_hits += 1;
        return it->second;
      }
      if (shared_memo_ != nullptr) {
        if (std::optional<bool> hit = shared_memo_->Lookup(plan_key, memo_key)) {
          if (stats_ != nullptr) stats_->shared_memo_hits += 1;
          memo->emplace(memo_key, *hit);
          return *hit;
        }
      }
      if (global_.memo != nullptr && global_.keys != nullptr) {
        const auto key_it = global_.keys->find(&e);
        if (key_it != global_.keys->end()) {
          has_global = true;
          global_key = key_it->second;
          if (std::optional<bool> hit =
                  global_.memo->Lookup(global_key, memo_key)) {
            if (stats_ != nullptr) stats_->subplan_memo_hits += 1;
            memo->emplace(memo_key, *hit);
            if (shared_memo_ != nullptr) {
              shared_memo_->Insert(plan_key, memo_key, *hit);
            }
            return *hit;
          }
        }
      }
    }
    if (stats_ != nullptr) stats_->subqueries += 1;

    Frame sub_frame;
    sub_frame.pp = &sub;
    sub_frame.bound.assign(sub.plan.num_vars, kNoRow);
    sub_frame.parent = &f;
    const bool found = Extend(sub_frame, 0, /*out=*/nullptr);
    if (memo != nullptr) {
      memo->emplace(memo_key, found);
      if (shared_memo_ != nullptr) {
        shared_memo_->Insert(plan_key, memo_key, found);
      }
      if (has_global) global_.memo->Insert(global_key, memo_key, found);
    }
    return found;
  }

  /// Binds the variable at `pos` and recurses. Returns true if at least one
  /// complete binding was reached below this point. `out == nullptr` means
  /// existence mode (stop at the first complete binding).
  bool Extend(Frame& f, int pos, QueryResult* out) {
    const PreparedPlan& pp = *f.pp;
    if (pos == static_cast<int>(pp.order.size())) {
      if (out != nullptr) {
        const Row r = f.bound[pp.plan.output_var];
        out_set_.insert((static_cast<uint64_t>(rel_.tid(r)) << 32) |
                        static_cast<uint32_t>(rel_.id(r)));
      }
      return true;
    }
    const int v = pp.order[pos];
    bool found_any = false;

    // `tail == nullptr` is the scalar path: every conjunct scheduled at
    // this position is checked (and the candidate counted — the batch
    // kernel counts whole chunks itself). A non-null `tail` comes from a
    // batch scan whose selection vector already applied the vectorizable
    // conjuncts; only the remainder is re-checked here. Conjunction
    // commutes and conjuncts are side-effect-free, so the split is sound.
    auto try_candidate = [&](Row cand,
                             const std::vector<const Conjunct*>* tail) -> bool {
      // returns true when the caller should stop enumerating
      if (tail == nullptr && stats_ != nullptr) stats_->candidates += 1;
      f.bound[v] = cand;
      bool ok = true;
      if (tail == nullptr) {
        for (const Conjunct& c : pp.conjuncts_at[pos]) {
          if (!EvalConjunct(f, c)) {
            ok = false;
            break;
          }
        }
      } else {
        for (const Conjunct* c : *tail) {
          if (!EvalConjunct(f, *c)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        for (const BoolExpr* filter : pp.filters_at[pos]) {
          if (!EvalBool(f, *filter)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        if (stats_ != nullptr) stats_->bindings += 1;
        const bool sub_found = Extend(f, pos + 1, out);
        found_any |= sub_found;
        if (sub_found) {
          if (out == nullptr) return true;  // existence: done
          if (options_.distinct_early_exit && pos > pp.output_pos) {
            return true;  // deeper bindings cannot change DISTINCT output
          }
        }
      }
      f.bound[v] = kNoRow;
      return false;
    };

    ForEachCandidate(f, pos, v, try_candidate);
    f.bound[v] = kNoRow;
    return found_any;
  }

  /// Derives bounds on var `v`'s columns from the conjuncts checkable at
  /// `pos` whose other side is already bound.
  Bounds DeriveBounds(const Frame& f, int pos, int v) const {
    Bounds b;
    for (const Conjunct& c : f.pp->conjuncts_at[pos]) {
      if (!IsLocal(c.lhs) || c.lhs.var != v) continue;
      int64_t rhs;
      if (!OperandValue(f, c.rhs, &rhs)) continue;
      switch (c.lhs.col) {
        case PlanCol::kTid:
          if (c.op == CmpOp::kEq) {
            b.has_tid = true;
            b.tid = static_cast<int32_t>(rhs);
          }
          break;
        case PlanCol::kId:
          if (c.op == CmpOp::kEq) {
            b.has_id = true;
            b.id = static_cast<int32_t>(rhs);
          }
          break;
        case PlanCol::kPid:
          if (c.op == CmpOp::kEq) {
            b.has_pid = true;
            b.pid = static_cast<int32_t>(rhs);
          }
          break;
        case PlanCol::kValue:
          if (c.op == CmpOp::kEq) {
            b.has_value = true;
            b.value = static_cast<Symbol>(rhs);
          }
          break;
        case PlanCol::kLeft:
          switch (c.op) {
            case CmpOp::kEq:
              b.left_lo = std::max(b.left_lo, rhs);
              b.left_hi = std::min(b.left_hi, rhs + 1);
              break;
            case CmpOp::kGe: b.left_lo = std::max(b.left_lo, rhs); break;
            case CmpOp::kGt: b.left_lo = std::max(b.left_lo, rhs + 1); break;
            case CmpOp::kLe: b.left_hi = std::min(b.left_hi, rhs + 1); break;
            case CmpOp::kLt: b.left_hi = std::min(b.left_hi, rhs); break;
            default: break;
          }
          break;
        case PlanCol::kRight:
          switch (c.op) {
            case CmpOp::kEq:
              b.right_lo = std::max(b.right_lo, rhs);
              b.right_hi = std::min(b.right_hi, rhs + 1);
              break;
            case CmpOp::kGe: b.right_lo = std::max(b.right_lo, rhs); break;
            case CmpOp::kGt: b.right_lo = std::max(b.right_lo, rhs + 1); break;
            case CmpOp::kLe: b.right_hi = std::min(b.right_hi, rhs + 1); break;
            case CmpOp::kLt: b.right_hi = std::min(b.right_hi, rhs); break;
            default: break;
          }
          break;
        default:
          break;
      }
    }
    return b;
  }

  /// Static facts for variable v: name / kind equality with literals.
  void StaticFacts(const PreparedPlan& pp, int v, Symbol* name,
                   int* kind) const {
    *name = kNoSymbol;
    *kind = -1;
    for (const Conjunct& c : pp.plan.conjuncts) {
      if (!IsLocal(c.lhs) || c.lhs.var != v) continue;
      if (!c.rhs.is_literal() || c.op != CmpOp::kEq) continue;
      if (c.lhs.col == PlanCol::kName) *name = static_cast<Symbol>(c.rhs.num);
      if (c.lhs.col == PlanCol::kKind) *kind = static_cast<int>(c.rhs.num);
    }
  }

  // --- Batch kernel ---------------------------------------------------------

  /// RAII lease of the per-depth batch scratch (see BatchBuf).
  class BatchGuard {
   public:
    explicit BatchGuard(Runner* runner) : runner_(runner) {
      if (runner_->batch_depth_ == runner_->batch_pool_.size()) {
        runner_->batch_pool_.push_back(std::make_unique<BatchBuf>());
      }
      buf_ = runner_->batch_pool_[runner_->batch_depth_++].get();
      buf_->filters.clear();
      buf_->tail.clear();
    }
    ~BatchGuard() { --runner_->batch_depth_; }
    BatchGuard(const BatchGuard&) = delete;
    BatchGuard& operator=(const BatchGuard&) = delete;
    BatchBuf* operator->() { return buf_; }
    BatchBuf& operator*() { return *buf_; }

   private:
    Runner* runner_;
    BatchBuf* buf_;
  };

  /// Splits the conjuncts scheduled at `pos` into vectorizable filters
  /// (lhs is a column of `v`, rhs constant during v's enumeration) and the
  /// scalar tail every survivor re-checks. A rhs naming `v` itself is not
  /// constant (it changes with the candidate), so it tails.
  void CollectBatchFilters(const Frame& f, int pos, int v,
                           BatchBuf* buf) const {
    for (const Conjunct& c : f.pp->conjuncts_at[pos]) {
      int64_t rhs = 0;
      const bool local = IsLocal(c.lhs) && c.lhs.var == v;
      const bool rhs_const =
          !(IsLocal(c.rhs) && c.rhs.var == v) && OperandValue(f, c.rhs, &rhs);
      if (local && rhs_const) {
        buf->filters.push_back(BatchFilter{c.lhs.col, c.op, rhs});
      } else {
        buf->tail.push_back(&c);
      }
    }
  }

  /// Fused decode: when `col` is served from a compressed v2 image payload
  /// (and the option is on), decodes rows [base, base + n) straight from
  /// the mapping into `scratch` and returns it; nullptr means "read the
  /// column span" (raw column, built relation, or option off).
  const uint32_t* MaybeDecode(PlanCol col, Row base, uint32_t n,
                              uint32_t* scratch) {
    if (!options_.scan_encoded || col == PlanCol::kKind) return nullptr;
    const EncodedColumnView& view =
        rel_.encoded(static_cast<RelCol>(col));
    if (!view.encoded()) return nullptr;
    const uint64_t touched = ColumnCodec::DecodeRange(view, base, n, scratch);
    if (stats_ != nullptr) stats_->decoded_blocks += touched;
    return scratch;
  }

  /// Runs `run` with a typed loader for column `col`: load(i) yields the
  /// value at row (base + i) under the scalar ColValue semantics (signed
  /// label columns sign-extend; name/value/kind zero-extend). `decoded`,
  /// when non-null, substitutes a fused-decode scratch for the span.
  template <typename RunFn>
  uint32_t WithDenseLoader(PlanCol col, Row base, const uint32_t* decoded,
                           RunFn&& run) const {
    if (decoded != nullptr) {
      if (col == PlanCol::kName || col == PlanCol::kValue) {
        return run([decoded](uint32_t i) {
          return static_cast<int64_t>(decoded[i]);
        });
      }
      return run([decoded](uint32_t i) {
        return static_cast<int64_t>(static_cast<int32_t>(decoded[i]));
      });
    }
    const auto i32 = [&run, base](std::span<const int32_t> s) {
      const int32_t* p = s.data() + base;
      return run([p](uint32_t i) { return static_cast<int64_t>(p[i]); });
    };
    switch (col) {
      case PlanCol::kTid: return i32(rel_.tid_col());
      case PlanCol::kLeft: return i32(rel_.left_col());
      case PlanCol::kRight: return i32(rel_.right_col());
      case PlanCol::kDepth: return i32(rel_.depth_col());
      case PlanCol::kId: return i32(rel_.id_col());
      case PlanCol::kPid: return i32(rel_.pid_col());
      case PlanCol::kName: {
        const Symbol* p = rel_.name_col().data() + base;
        return run([p](uint32_t i) { return static_cast<int64_t>(p[i]); });
      }
      case PlanCol::kValue: {
        const Symbol* p = rel_.value_col().data() + base;
        return run([p](uint32_t i) { return static_cast<int64_t>(p[i]); });
      }
      case PlanCol::kKind: {
        const uint8_t* p = rel_.kind_col().data() + base;
        return run([p](uint32_t i) { return static_cast<int64_t>(p[i]); });
      }
    }
    return 0;
  }

  /// Gather flavor: load(i) yields the column value at row rows[i].
  template <typename RunFn>
  uint32_t WithGatherLoader(PlanCol col, const Row* rows, RunFn&& run) const {
    const auto i32 = [&run, rows](std::span<const int32_t> s) {
      const int32_t* p = s.data();
      return run([p, rows](uint32_t i) {
        return static_cast<int64_t>(p[rows[i]]);
      });
    };
    switch (col) {
      case PlanCol::kTid: return i32(rel_.tid_col());
      case PlanCol::kLeft: return i32(rel_.left_col());
      case PlanCol::kRight: return i32(rel_.right_col());
      case PlanCol::kDepth: return i32(rel_.depth_col());
      case PlanCol::kId: return i32(rel_.id_col());
      case PlanCol::kPid: return i32(rel_.pid_col());
      case PlanCol::kName: {
        const Symbol* p = rel_.name_col().data();
        return run([p, rows](uint32_t i) {
          return static_cast<int64_t>(p[rows[i]]);
        });
      }
      case PlanCol::kValue: {
        const Symbol* p = rel_.value_col().data();
        return run([p, rows](uint32_t i) {
          return static_cast<int64_t>(p[rows[i]]);
        });
      }
      case PlanCol::kKind: {
        const uint8_t* p = rel_.kind_col().data();
        return run([p, rows](uint32_t i) {
          return static_cast<int64_t>(p[rows[i]]);
        });
      }
    }
    return 0;
  }

  /// Applies buf.filters[fi] over a chunk. The first filter fills the
  /// selection vector densely and branch-free (sel[k] = i; k += pass);
  /// later filters compact it in place.
  template <typename LoaderFn>
  uint32_t RunFilter(const BatchFilter& bf, LoaderFn&& with_loader,
                     uint32_t n_or_k, bool dense, uint32_t* sel) const {
    return with_loader([&](auto load) {
      return WithCmp(bf.op, bf.rhs, [&](auto cmp) {
        uint32_t k = 0;
        if (dense) {
          for (uint32_t i = 0; i < n_or_k; ++i) {
            sel[k] = i;
            k += cmp(load(i)) ? 1 : 0;
          }
        } else {
          for (uint32_t j = 0; j < n_or_k; ++j) {
            const uint32_t i = sel[j];
            sel[k] = i;
            k += cmp(load(i)) ? 1 : 0;
          }
        }
        return k;
      });
    });
  }

  void NoteBatch(uint32_t n, uint32_t k) const {
    if (stats_ == nullptr) return;
    stats_->batches += 1;
    stats_->batch_rows += n;
    stats_->batch_selected += k;
    stats_->candidates += n;
  }

  /// Batch scan over the contiguous rows [begin, end) — the clustered-run
  /// and full-scan access paths. Returns true when `fn` stopped the
  /// enumeration. Chunks are aligned to the codec block grid so a fused
  /// decode of the leading column touches exactly one block per chunk.
  template <typename Fn>
  bool BatchScanRange(BatchBuf& buf, Row begin, Row end, Fn&& fn) {
    for (Row base = begin; base < end;) {
      const Row block_end = static_cast<Row>(
          (static_cast<uint64_t>(base) / kBatchRows + 1) * kBatchRows);
      const uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(block_end, end) - base);
      const BatchFilter& first = buf.filters.front();
      const uint32_t* decoded =
          MaybeDecode(first.col, base, n, buf.decode.data());
      uint32_t k = RunFilter(
          first,
          [&](auto&& run) {
            return WithDenseLoader(first.col, base, decoded, run);
          },
          n, /*dense=*/true, buf.sel.data());
      for (size_t fi = 1; fi < buf.filters.size() && k > 0; ++fi) {
        const BatchFilter& bf = buf.filters[fi];
        k = RunFilter(
            bf,
            [&](auto&& run) {
              return WithDenseLoader(bf.col, base, nullptr, run);
            },
            k, /*dense=*/false, buf.sel.data());
      }
      NoteBatch(n, k);
      for (uint32_t j = 0; j < k; ++j) {
        if (fn(base + buf.sel[j], &buf.tail)) return true;
      }
      base += n;
    }
    return false;
  }

  /// Batch scan over an index's row list (value index, by-right/by-pid
  /// permutations): values gather through the row indirection.
  template <typename Fn>
  bool BatchScanRows(BatchBuf& buf, std::span<const Row> rows, Fn&& fn) {
    for (size_t at = 0; at < rows.size(); at += kBatchRows) {
      const uint32_t n =
          static_cast<uint32_t>(std::min<size_t>(kBatchRows, rows.size() - at));
      const Row* chunk = rows.data() + at;
      uint32_t k = 0;
      for (size_t fi = 0; fi < buf.filters.size(); ++fi) {
        const BatchFilter& bf = buf.filters[fi];
        k = RunFilter(
            bf,
            [&](auto&& run) { return WithGatherLoader(bf.col, chunk, run); },
            fi == 0 ? n : k, /*dense=*/fi == 0, buf.sel.data());
        if (k == 0) break;
      }
      NoteBatch(n, k);
      for (uint32_t j = 0; j < k; ++j) {
        if (fn(chunk[buf.sel[j]], &buf.tail)) return true;
      }
    }
    return false;
  }

  template <typename Fn>
  void ForEachCandidate(const Frame& f, int pos, int v, Fn&& fn) {
    const PreparedPlan& pp = *f.pp;
    Symbol name;
    int kind;
    StaticFacts(pp, v, &name, &kind);
    Bounds b = DeriveBounds(f, pos, v);

    // No direct tid conjunct available yet? Derive the tree through v's tid
    // equivalence class: any bound class member, or the class's outer
    // correlation, pins the tree.
    if (!b.has_tid && v < static_cast<int>(pp.tid_class.size())) {
      const int cls = pp.tid_class[v];
      for (int u = 0; u < static_cast<int>(f.bound.size()) && !b.has_tid;
           ++u) {
        if (u != v && pp.tid_class[u] == cls && f.bound[u] != kNoRow) {
          b.has_tid = true;
          b.tid = rel_.tid(f.bound[u]);
        }
      }
      if (!b.has_tid && pp.class_has_outer[cls]) {
        int64_t tid_value = 0;
        if (OperandValue(f, pp.class_outer_tid[cls], &tid_value)) {
          b.has_tid = true;
          b.tid = static_cast<int32_t>(tid_value);
        }
      }
    }

    // Shard constraint: only the root plan's first variable is clamped to
    // the shard's tid slice; every path below inherits the restriction
    // through the tid links. tids are non-negative, so the unsharded
    // [0, kMaxInt) defaults are vacuous.
    const bool sharded = &pp == root_pp_ && pos == 0;
    const int32_t tid_lo = sharded ? shard_lo_ : 0;
    const int32_t tid_hi = sharded ? shard_hi_ : kMaxInt;
    if (b.has_tid && (b.tid < tid_lo || b.tid >= tid_hi)) return;

    const int32_t left_lo =
        static_cast<int32_t>(std::max<int64_t>(b.left_lo, kMinInt + 1));
    const int32_t left_hi =
        static_cast<int32_t>(std::min<int64_t>(b.left_hi, kMaxInt - 1));
    const int32_t right_lo =
        static_cast<int32_t>(std::max<int64_t>(b.right_lo, kMinInt + 1));
    const int32_t right_hi =
        static_cast<int32_t>(std::min<int64_t>(b.right_hi, kMaxInt - 1));
    const bool left_bounded = b.left_lo != kMinInt || b.left_hi != kMaxInt;
    const bool right_bounded = b.right_lo != kMinInt || b.right_hi != kMaxInt;

    // 1. Direct (tid, id) lookup. Point lookups stay scalar — there is no
    // column chunk to vectorize over.
    if (b.has_id && b.has_tid) {
      if (kind != 0) {
        for (Row r : rel_.AttrRows(b.tid, b.id)) {
          if (fn(r, nullptr)) return;
        }
      }
      if (kind != 1) {
        const Row r = rel_.ElementRow(b.tid, b.id);
        if (r != kNoRow && fn(r, nullptr)) return;
      }
      return;
    }
    // 2. Value index. The global index is ordered by (tid, id), so a shard
    // binary-searches to its first tree and stops at its last.
    if (b.has_value) {
      auto rows = b.has_tid ? rel_.ValueRangeForTree(b.value, b.tid)
                            : rel_.ValueRange(b.value);
      if (options_.vectorized && rows.size() >= options_.batch_min_rows) {
        BatchGuard buf(this);
        CollectBatchFilters(f, pos, v, &*buf);
        if (!buf->filters.empty()) {
          auto span = rows;
          if (sharded && !b.has_tid) {
            const auto tid_less = [this](Row r, int32_t t) {
              return rel_.tid(r) < t;
            };
            const auto first =
                std::lower_bound(rows.begin(), rows.end(), tid_lo, tid_less);
            const auto last =
                std::lower_bound(first, rows.end(), tid_hi, tid_less);
            span = rows.subspan(first - rows.begin(), last - first);
          }
          BatchScanRows(*buf, span, fn);
          return;
        }
      }
      auto it = rows.begin();
      if (sharded && !b.has_tid) {
        it = std::lower_bound(rows.begin(), rows.end(), tid_lo,
                              [this](Row r, int32_t t) {
                                return rel_.tid(r) < t;
                              });
      }
      for (; it != rows.end(); ++it) {
        if (sharded && !b.has_tid && rel_.tid(*it) >= tid_hi) break;
        if (fn(*it, nullptr)) return;
      }
      return;
    }
    // Also use a *static* value fact (value = 'saw' conjunct at this pos is
    // covered above; a value conjunct scheduled here with literal rhs is in
    // DeriveBounds already).

    // 3. pid equality (children / siblings).
    if (b.has_pid && b.has_tid) {
      if (name != kNoSymbol) {
        const auto rows = rel_.RunPidRange(name, b.tid, b.pid);
        if (options_.vectorized && rows.size() >= options_.batch_min_rows) {
          BatchGuard buf(this);
          CollectBatchFilters(f, pos, v, &*buf);
          if (!buf->filters.empty()) {
            BatchScanRows(*buf, rows, fn);
            return;
          }
        }
        for (Row r : rows) {
          if (fn(r, nullptr)) return;
        }
        return;
      }
      if (b.pid == 0) {
        const Row root = rel_.ElementRow(b.tid, 1);
        if (root != kNoRow && fn(root, nullptr)) return;
        return;
      }
      const Row parent = rel_.ElementRow(b.tid, b.pid);
      if (parent == kNoRow) return;
      const auto rows = rel_.ElementsInLeftRange(b.tid, rel_.left(parent),
                                                 rel_.right(parent));
      if (options_.vectorized && rows.size() >= options_.batch_min_rows) {
        BatchGuard buf(this);
        CollectBatchFilters(f, pos, v, &*buf);
        // The access path only narrows to the parent's subtree; pid
        // equality itself rides the selection vector.
        buf->filters.push_back(
            BatchFilter{PlanCol::kPid, CmpOp::kEq, b.pid});
        BatchScanRows(*buf, rows, fn);
        return;
      }
      for (Row r : rows) {
        if (rel_.pid(r) == b.pid && fn(r, nullptr)) return;
      }
      return;
    }
    // 4. Tag run with ranges. These are the containment / sibling-order /
    // edge-alignment workhorses, and the batch kernel's main stage: the
    // access path gives a contiguous clustered slice (or a by-right row
    // list), and the remaining interval predicates vectorize over it.
    if (name != kNoSymbol) {
      if (b.has_tid) {
        if (right_bounded && !left_bounded) {
          const auto rows = rel_.RunRightRange(name, b.tid, right_lo, right_hi);
          if (options_.vectorized &&
              rows.size() >= options_.batch_min_rows) {
            BatchGuard buf(this);
            CollectBatchFilters(f, pos, v, &*buf);
            if (!buf->filters.empty()) {
              BatchScanRows(*buf, rows, fn);
              return;
            }
          }
          for (Row r : rows) {
            if (fn(r, nullptr)) return;
          }
          return;
        }
        RowRange range =
            left_bounded ? rel_.RunLeftRange(name, b.tid, left_lo, left_hi)
                         : rel_.RunForTree(name, b.tid);
        if (options_.vectorized &&
            static_cast<uint32_t>(range.end - range.begin) >=
                options_.batch_min_rows) {
          BatchGuard buf(this);
          CollectBatchFilters(f, pos, v, &*buf);
          if (!buf->filters.empty()) {
            BatchScanRange(*buf, range.begin, range.end, fn);
            return;
          }
        }
        for (Row r = range.begin; r < range.end; ++r) {
          if (fn(r, nullptr)) return;
        }
        return;
      }
      const RowRange range = sharded ? rel_.RunTidRange(name, tid_lo, tid_hi)
                                     : rel_.run(name);
      if (options_.vectorized &&
          static_cast<uint32_t>(range.end - range.begin) >=
              options_.batch_min_rows) {
        BatchGuard buf(this);
        CollectBatchFilters(f, pos, v, &*buf);
        if (!buf->filters.empty()) {
          BatchScanRange(*buf, range.begin, range.end, fn);
          return;
        }
      }
      for (Row r = range.begin; r < range.end; ++r) {
        if (fn(r, nullptr)) return;
      }
      return;
    }
    // 5. Wildcard within a tree. Stays scalar: elements interleave with
    // their attribute rows, so there is no single column stream to chunk.
    if (b.has_tid) {
      auto rows = left_bounded
                      ? rel_.ElementsInLeftRange(b.tid, left_lo, left_hi)
                      : rel_.ElementsOfTree(b.tid);
      for (Row r : rows) {
        if (kind != 1 && fn(r, nullptr)) return;
        if (kind != 0) {
          for (Row a : rel_.AttrRows(b.tid, rel_.id(r))) {
            if (fn(a, nullptr)) return;
          }
        }
      }
      return;
    }
    // 6. Full scan. The shard clamp and kind check become synthetic batch
    // filters over the tid/kind columns.
    if (options_.vectorized &&
        rel_.row_count() >= options_.batch_min_rows) {
      BatchGuard buf(this);
      CollectBatchFilters(f, pos, v, &*buf);
      if (sharded) {
        buf->filters.push_back(BatchFilter{PlanCol::kTid, CmpOp::kGe, tid_lo});
        buf->filters.push_back(BatchFilter{PlanCol::kTid, CmpOp::kLt, tid_hi});
      }
      if (kind >= 0) {
        buf->filters.push_back(BatchFilter{PlanCol::kKind, CmpOp::kEq, kind});
      }
      if (!buf->filters.empty()) {
        BatchScanRange(*buf, 0, static_cast<Row>(rel_.row_count()), fn);
        return;
      }
    }
    for (Row r = 0; r < static_cast<Row>(rel_.row_count()); ++r) {
      if (sharded && (rel_.tid(r) < tid_lo || rel_.tid(r) >= tid_hi)) {
        continue;
      }
      if (kind >= 0 && static_cast<int>(rel_.kind(r)) != kind) continue;
      if (fn(r, nullptr)) return;
    }
  }

  const NodeRelation& rel_;
  const ExecOptions& options_;
  ExecStats* stats_;
  ExistsMemo* shared_memo_;
  GlobalExistsMemo global_;
  const PreparedPlan* root_pp_ = nullptr;
  int32_t shard_lo_ = 0;
  int32_t shard_hi_ = kMaxInt;
  std::unordered_set<uint64_t> out_set_;
  std::unordered_map<const BoolExpr*, std::unordered_map<uint64_t, bool>>
      memo_;
  // Batch scratch pool, one buffer per live Extend depth (see BatchGuard).
  std::vector<std::unique_ptr<BatchBuf>> batch_pool_;
  size_t batch_depth_ = 0;
};

}  // namespace

Result<QueryResult> PlanExecutor::Execute(const ExecPlan& plan,
                                          ExecStats* stats) const {
  LPATH_ASSIGN_OR_RETURN(std::unique_ptr<PreparedPlan> pp,
                         Prepare(plan, rel_, options_));
  return ExecutePrepared(*pp, stats);
}

Result<QueryResult> PlanExecutor::ExecutePrepared(const PreparedPlan& pp,
                                                  ExecStats* stats,
                                                  ExistsMemo* shared_memo,
                                                  GlobalExistsMemo global) const {
  if (stats != nullptr) stats->shards += 1;
  Runner runner(rel_, options_, stats, shared_memo, global);
  QueryResult out;
  LPATH_RETURN_IF_ERROR(runner.Run(pp, &out));
  return out;
}

Result<QueryResult> PlanExecutor::ExecuteShard(const PreparedPlan& pp,
                                               int32_t tid_lo, int32_t tid_hi,
                                               ExecStats* stats,
                                               ExistsMemo* shared_memo,
                                               GlobalExistsMemo global) const {
  if (stats != nullptr) stats->shards += 1;
  Runner runner(rel_, options_, stats, shared_memo, global);
  QueryResult out;
  LPATH_RETURN_IF_ERROR(runner.RunShard(pp, tid_lo, tid_hi, &out));
  return out;
}

}  // namespace sql
}  // namespace lpath
