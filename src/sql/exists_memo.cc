#include "sql/exists_memo.h"

#include <algorithm>

namespace lpath {
namespace sql {

ExistsMemo::ExistsMemo(size_t max_entries)
    : per_stripe_capacity_(std::max<size_t>(1, max_entries / kStripes)) {}

std::optional<bool> ExistsMemo::Lookup(uint64_t sub_key,
                                       uint64_t binding) const {
  const Key key{sub_key, binding};
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(key);
  if (it == stripe.map.end()) return std::nullopt;
  return it->second;
}

void ExistsMemo::Insert(uint64_t sub_key, uint64_t binding, bool value) {
  const Key key{sub_key, binding};
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.map.size() >= per_stripe_capacity_ &&
      stripe.map.find(key) == stripe.map.end()) {
    return;  // full: drop the insert, keep serving lookups
  }
  stripe.map.insert_or_assign(key, value);
}

size_t ExistsMemo::size() const {
  size_t total = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.map.size();
  }
  return total;
}

}  // namespace sql
}  // namespace lpath
