// Plan preparation: the statistics-driven join-order optimizer.
//
// Prepare() turns an ExecPlan into a PreparedPlan the executor can run:
//   1. comparisons are oriented column-first and string literals resolved
//      against the relation's dictionary (an unknown tag/word in a
//      top-level equality short-circuits the plan to empty; inside OR/NOT
//      filter trees it resolves to an unsatisfiable sentinel instead);
//   2. a variable evaluation order is chosen — greedy by estimated
//      cardinality (tag-run and value-index sizes, exactly the statistics
//      the paper's §5.2 discussion turns on), or left-to-right for the
//      ablation benchmark;
//   3. conjuncts are oriented (later-bound variable on the left) and
//      scheduled at the position where they first become checkable;
//   4. EXISTS subplans are prepared recursively, and their correlation
//      variables identified for memoization.

#ifndef LPATHDB_SQL_OPTIMIZER_H_
#define LPATHDB_SQL_OPTIMIZER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "plan/exec_plan.h"
#include "storage/relation.h"

namespace lpath {
namespace sql {

/// Executor tuning knobs (ablation benchmarks flip these).
struct ExecOptions {
  enum class JoinOrder {
    kGreedy,       ///< cheapest-first by estimated cardinality (default)
    kLeftToRight,  ///< plan order, i.e. query-step order
  };
  JoinOrder join_order = JoinOrder::kGreedy;

  /// Once a complete binding extends a given output row, stop exploring
  /// alternatives that cannot change the DISTINCT result. Disabling this
  /// reproduces the "materialize all intermediate results, deduplicate at
  /// the end" behaviour of a naive RDBMS plan.
  bool distinct_early_exit = true;

  /// Evaluate filters over ~1024-row column chunks producing selection
  /// vectors (the MonetDB/X100-style batch kernel) instead of row at a
  /// time. Off = the scalar kernel, kept as the differential-testing
  /// reference; both produce identical results.
  bool vectorized = true;

  /// Candidate ranges shorter than this stay on the scalar loop even when
  /// `vectorized` is on: chunk setup (scratch lease, filter split, typed
  /// dispatch) costs more than just testing a handful of rows, and inner
  /// per-tree tag runs are typically a few rows long. 0 forces the batch
  /// kernel everywhere (the differential tests do this so every access
  /// path's batch flavor is exercised).
  uint32_t batch_min_rows = 64;

  /// When the relation was opened from a v2 image with encoded columns,
  /// let the batch kernel decode its leading scan column straight from
  /// the compressed image payload (fused decode) instead of reading the
  /// open-time decoded arena. No effect on built relations or v1 images.
  bool scan_encoded = true;
};

/// A plan ready for execution against one NodeRelation. Owns a rewritten
/// copy of the plan, so it must not outlive the relation (symbols) but is
/// independent of the original ExecPlan.
struct PreparedPlan {
  ExecPlan plan;  // literals resolved to symbol ids (numbers)

  std::vector<int> order;   ///< position -> variable
  std::vector<int> pos_of;  ///< variable -> position
  int output_pos = 0;

  /// Conjuncts checkable once the variable at position p is bound
  /// (oriented: lhs.var is that variable whenever a local var is involved).
  std::vector<std::vector<Conjunct>> conjuncts_at;

  /// Filters evaluable once position p is bound.
  std::vector<std::vector<const BoolExpr*>> filters_at;

  /// Prepared subplans for every kExists node in the filters.
  std::unordered_map<const BoolExpr*, std::unique_ptr<PreparedPlan>> subs;

  /// For memoization: the single parent variable a subplan correlates on,
  /// or -1 if it references zero or multiple parent variables.
  std::unordered_map<const BoolExpr*, int> sub_outer_var;

  /// Structural fingerprint of the *input* (unresolved) plan — see
  /// sql/fingerprint.h. Corpus-independent: the same value for this plan
  /// prepared against any relation, so it can key a cross-source cache.
  uint64_t fingerprint = 0;

  /// Structural fingerprints of the *resolved* EXISTS subtrees, for
  /// memoizable subplans only (single correlation variable). Resolved
  /// symbol ids are per-relation, so these keys are valid exactly for the
  /// relation this plan was prepared against — the isolation the
  /// snapshot-scoped subplan memo registry needs. Only this level's
  /// direct subplans appear; nested levels carry their own maps.
  std::unordered_map<const BoolExpr*, uint64_t> sub_fingerprint;

  /// True if some conjunct can never hold (e.g. name = unknown tag).
  bool always_empty = false;

  /// The optimizer's cardinality estimate for the root (first-bound)
  /// variable — the number of rows a shard partition would split. The
  /// service's adaptive heuristic runs the query serially when this is
  /// small (fan-out overhead would dominate).
  size_t root_cardinality = 0;

  /// tid equivalence classes: variables linked (transitively) by tid
  /// equality conjuncts share a class, so the executor can derive a
  /// variable's tree from *any* bound variable in its class — not only
  /// from the variable its tid conjunct happens to mention.
  std::vector<int> tid_class;  ///< per variable; -1 = unconstrained
  /// Per class: an outer-reference operand whose tid the class equals
  /// (correlated subplans), or a literal-free invalid operand.
  std::vector<Operand> class_outer_tid;  ///< indexed by class id
  std::vector<uint8_t> class_has_outer;
};

/// Prepares `plan` for execution against `rel`.
Result<std::unique_ptr<PreparedPlan>> Prepare(const ExecPlan& plan,
                                              const NodeRelation& rel,
                                              const ExecOptions& options);

/// Process-wide count of top-level Prepare() calls — a test witness for
/// prepare dedup (N spellings of one structure must prepare once per
/// relation source, not once per spelling).
uint64_t PrepareCallCount();

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_OPTIMIZER_H_
