#include "sql/lexer.h"

#include <cctype>

namespace lpath {
namespace sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(text.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      tok.kind = TokenKind::kNumber;
      tok.number = std::stoll(std::string(text.substr(start, i - start)));
    } else if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {  // escaped quote
            s.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        s.push_back(text[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(tok.pos));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
    } else {
      switch (c) {
        case '.': tok.kind = TokenKind::kDot; ++i; break;
        case ',': tok.kind = TokenKind::kComma; ++i; break;
        case '(': tok.kind = TokenKind::kLParen; ++i; break;
        case ')': tok.kind = TokenKind::kRParen; ++i; break;
        case '=': tok.kind = TokenKind::kEq; ++i; break;
        case '!':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.kind = TokenKind::kNe;
            i += 2;
          } else {
            return Status::InvalidArgument("unexpected '!' at offset " +
                                           std::to_string(i));
          }
          break;
        case '<':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.kind = TokenKind::kLe;
            i += 2;
          } else if (i + 1 < n && text[i + 1] == '>') {
            tok.kind = TokenKind::kNe;
            i += 2;
          } else {
            tok.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.kind = TokenKind::kGe;
            i += 2;
          } else {
            tok.kind = TokenKind::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at offset " +
              std::to_string(i));
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = n;
  out.push_back(end);
  return out;
}

}  // namespace sql
}  // namespace lpath
