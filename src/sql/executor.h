// The index-nested-loop executor over storage::NodeRelation.
//
// Binds plan variables in the optimizer's order; for each new variable it
// derives the best available access path from the conjuncts whose other
// side is already bound — the clustered tag runs, (tid,left)/(tid,right)
// ranges, the pid and value indexes, or direct (tid,id) lookup — then
// filters with the remaining conjuncts and boolean filters. EXISTS subplans
// run recursively with memoization on their correlation variable. Output is
// the DISTINCT (tid, id) set of the output variable.

#ifndef LPATHDB_SQL_EXECUTOR_H_
#define LPATHDB_SQL_EXECUTOR_H_

#include <cstdint>

#include "common/result.h"
#include "lpath/engine.h"
#include "sql/optimizer.h"

namespace lpath {
namespace sql {

/// Work counters for ablation reports.
struct ExecStats {
  uint64_t candidates = 0;   ///< rows enumerated from access paths
  uint64_t bindings = 0;     ///< rows surviving conjuncts + filters
  uint64_t subqueries = 0;   ///< EXISTS evaluations (after memo hits)
  uint64_t memo_hits = 0;
};

/// Executes prepared plans. Stateless between calls; one executor can be
/// shared for many queries against the same relation.
class PlanExecutor {
 public:
  explicit PlanExecutor(const NodeRelation& rel, ExecOptions options = {})
      : rel_(rel), options_(options) {}

  /// Prepares and runs `plan`.
  Result<QueryResult> Execute(const ExecPlan& plan,
                              ExecStats* stats = nullptr) const;

  /// Runs an already prepared plan.
  Result<QueryResult> ExecutePrepared(const PreparedPlan& pp,
                                      ExecStats* stats = nullptr) const;

  const ExecOptions& options() const { return options_; }
  const NodeRelation& relation() const { return rel_; }

 private:
  const NodeRelation& rel_;
  ExecOptions options_;
};

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_EXECUTOR_H_
