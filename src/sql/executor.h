// The index-nested-loop executor over storage::NodeRelation.
//
// Binds plan variables in the optimizer's order; for each new variable it
// derives the best available access path from the conjuncts whose other
// side is already bound — the clustered tag runs, (tid,left)/(tid,right)
// ranges, the pid and value indexes, or direct (tid,id) lookup — then
// filters with the remaining conjuncts and boolean filters. EXISTS subplans
// run recursively with memoization on their correlation variable. Output is
// the DISTINCT (tid, id) set of the output variable.

#ifndef LPATHDB_SQL_EXECUTOR_H_
#define LPATHDB_SQL_EXECUTOR_H_

#include <cstdint>

#include "common/result.h"
#include "lpath/engine.h"
#include "sql/optimizer.h"

namespace lpath {
namespace sql {

/// Work counters for ablation reports.
struct ExecStats {
  uint64_t candidates = 0;   ///< rows enumerated from access paths
  uint64_t bindings = 0;     ///< rows surviving conjuncts + filters
  uint64_t subqueries = 0;   ///< EXISTS evaluations (after memo hits)
  uint64_t memo_hits = 0;

  /// Accumulates another run's counters (per-shard stats roll up).
  void Add(const ExecStats& o) {
    candidates += o.candidates;
    bindings += o.bindings;
    subqueries += o.subqueries;
    memo_hits += o.memo_hits;
  }
};

/// Executes prepared plans. Stateless between calls; one executor can be
/// shared for many queries against the same relation.
class PlanExecutor {
 public:
  explicit PlanExecutor(const NodeRelation& rel, ExecOptions options = {})
      : rel_(rel), options_(options) {}

  /// Prepares and runs `plan`.
  Result<QueryResult> Execute(const ExecPlan& plan,
                              ExecStats* stats = nullptr) const;

  /// Runs an already prepared plan.
  Result<QueryResult> ExecutePrepared(const PreparedPlan& pp,
                                      ExecStats* stats = nullptr) const;

  /// Runs one shard of a prepared plan: the root frame's candidate
  /// enumeration is constrained to trees with tid in [tid_lo, tid_hi).
  /// Every complete binding is found by exactly one shard, so the union of
  /// the shard results over a partition of the tid space — deduplicated,
  /// since distinct bindings in different shards may project to the same
  /// output node — equals ExecutePrepared's result. Safe to call
  /// concurrently from many threads with one shared PreparedPlan.
  Result<QueryResult> ExecuteShard(const PreparedPlan& pp, int32_t tid_lo,
                                   int32_t tid_hi,
                                   ExecStats* stats = nullptr) const;

  const ExecOptions& options() const { return options_; }
  const NodeRelation& relation() const { return rel_; }

 private:
  const NodeRelation& rel_;
  ExecOptions options_;
};

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_EXECUTOR_H_
