// The index-nested-loop executor over storage::NodeRelation.
//
// Binds plan variables in the optimizer's order; for each new variable it
// derives the best available access path from the conjuncts whose other
// side is already bound — the clustered tag runs, (tid,left)/(tid,right)
// ranges, the pid and value indexes, or direct (tid,id) lookup — then
// filters with the remaining conjuncts and boolean filters. EXISTS subplans
// run recursively with memoization on their correlation variable. Output is
// the DISTINCT (tid, id) set of the output variable.

#ifndef LPATHDB_SQL_EXECUTOR_H_
#define LPATHDB_SQL_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/result.h"
#include "lpath/engine.h"
#include "sql/exists_memo.h"
#include "sql/optimizer.h"
#include "storage/snapshot.h"

namespace lpath {
namespace sql {

/// Work counters for ablation reports.
struct ExecStats {
  uint64_t candidates = 0;   ///< rows enumerated from access paths
  uint64_t bindings = 0;     ///< rows surviving conjuncts + filters
  uint64_t subqueries = 0;   ///< EXISTS evaluations (after memo hits)
  uint64_t memo_hits = 0;    ///< run-private EXISTS memo hits
  /// Hits in the *shared* EXISTS memo (see sql::ExistsMemo): subquery
  /// answers reused across the morsels of a query or across executions of
  /// one cached plan, rather than re-derived by this run.
  uint64_t shared_memo_hits = 0;
  /// Hits in the snapshot-scoped *subplan* memo (fingerprint-keyed; see
  /// service/subplan_memo.h): subquery answers derived by a *different*
  /// top-level plan sharing a structurally equal EXISTS subtree.
  uint64_t subplan_memo_hits = 0;
  /// Plan executions: each ExecutePrepared/ExecuteShard call contributes 1,
  /// so rolled up per query this is the fan-out the service chose — 1 means
  /// the adaptive heuristic ran the query serially.
  uint64_t shards = 0;
  /// Morsels the service's scheduler carved the query into (1 = serial).
  /// Set by the scheduler, not by the executor: a raw ExecuteShard call is
  /// a kernel invocation, not a scheduling decision.
  uint64_t morsels = 0;
  /// Morsels claimed by pool helper threads rather than the submitting
  /// thread — the work-stealing share of the fan-out (also scheduler-set).
  uint64_t steal_count = 0;
  /// Column chunks the batch kernel evaluated (0 under the scalar kernel).
  uint64_t batches = 0;
  /// Rows those chunks covered (these also count into `candidates`).
  uint64_t batch_rows = 0;
  /// Rows surviving the chunk's vectorized filters into selection vectors.
  uint64_t batch_selected = 0;
  /// Codec blocks/runs decoded by scans fused over compressed columns.
  uint64_t decoded_blocks = 0;
  /// Relation sources the execution consulted: 1 for a plain snapshot, 2
  /// when a snapshot chain's delta ran alongside the base (scheduler-set).
  /// Rolls up as a maximum, so aggregated stats answer "was the chain ever
  /// two-source" rather than summing a meaningless total.
  uint64_t sources = 0;
  /// Candidate rows enumerated from the delta source (these also count
  /// into `candidates`) — how much of the work the unmerged tail carries.
  uint64_t delta_rows = 0;

  /// Fraction of batch-scanned rows that made it into a selection vector;
  /// 1.0 when no batches ran.
  double sel_density() const {
    return batch_rows == 0
               ? 1.0
               : static_cast<double>(batch_selected) /
                     static_cast<double>(batch_rows);
  }

  /// Accumulates another run's counters (per-shard stats roll up).
  void Add(const ExecStats& o) {
    candidates += o.candidates;
    bindings += o.bindings;
    subqueries += o.subqueries;
    memo_hits += o.memo_hits;
    shared_memo_hits += o.shared_memo_hits;
    subplan_memo_hits += o.subplan_memo_hits;
    shards += o.shards;
    morsels += o.morsels;
    steal_count += o.steal_count;
    batches += o.batches;
    batch_rows += o.batch_rows;
    batch_selected += o.batch_selected;
    decoded_blocks += o.decoded_blocks;
    sources = sources > o.sources ? sources : o.sources;
    delta_rows += o.delta_rows;
  }
};

/// Snapshot-scoped EXISTS memo attachment for one execution: `memo` is a
/// session-wide fingerprint-keyed table shared by every plan prepared
/// against one relation source, and `keys` maps this prepared plan's
/// memoizable EXISTS nodes (all nesting levels) to their registry-verified
/// subtree fingerprints. Nodes absent from `keys` — hash collisions the
/// registry refused to share, or non-memoizable subtrees — simply skip the
/// global level. A default-constructed value disables the feature.
struct GlobalExistsMemo {
  ExistsMemo* memo = nullptr;
  const std::unordered_map<const BoolExpr*, uint64_t>* keys = nullptr;
};

/// Executes prepared plans. Stateless between calls; one executor can be
/// shared for many queries against the same relation.
class PlanExecutor {
 public:
  /// Borrowing executor: the caller guarantees `rel` outlives it (engines
  /// and tests with stack-scoped relations).
  explicit PlanExecutor(const NodeRelation& rel, ExecOptions options = {})
      : rel_(rel), options_(options) {}

  /// Snapshot-owning executor: shares ownership of the snapshot, so the
  /// relation it reads stays alive even after the snapshot is swapped out
  /// of its service — the hot-swap safety contract.
  explicit PlanExecutor(SnapshotPtr snapshot, ExecOptions options = {})
      : snapshot_(std::move(snapshot)),
        rel_(snapshot_->relation()),
        options_(options) {}

  /// Prepares and runs `plan`.
  Result<QueryResult> Execute(const ExecPlan& plan,
                              ExecStats* stats = nullptr) const;

  /// Runs an already prepared plan. `shared_memo`, when non-null, is a
  /// cross-run EXISTS memo consulted before (and filled alongside) the
  /// run-private one; it must have been filled only against this (plan,
  /// relation) pair — see sql::ExistsMemo for the contract. `global`
  /// optionally adds the snapshot-scoped fingerprint-keyed memo level
  /// consulted last and filled alongside the others; it must be scoped to
  /// this relation source (see GlobalExistsMemo).
  Result<QueryResult> ExecutePrepared(const PreparedPlan& pp,
                                      ExecStats* stats = nullptr,
                                      ExistsMemo* shared_memo = nullptr,
                                      GlobalExistsMemo global = {}) const;

  /// Runs one shard of a prepared plan: the root frame's candidate
  /// enumeration is constrained to trees with tid in [tid_lo, tid_hi).
  /// Every complete binding is found by exactly one shard, so the union of
  /// the shard results over a partition of the tid space — deduplicated,
  /// since distinct bindings in different shards may project to the same
  /// output node — equals ExecutePrepared's result. Safe to call
  /// concurrently from many threads with one shared PreparedPlan (and one
  /// shared ExistsMemo — the morsel scheduler passes the same memo to
  /// every concurrent kernel invocation of a query).
  Result<QueryResult> ExecuteShard(const PreparedPlan& pp, int32_t tid_lo,
                                   int32_t tid_hi, ExecStats* stats = nullptr,
                                   ExistsMemo* shared_memo = nullptr,
                                   GlobalExistsMemo global = {}) const;

  const ExecOptions& options() const { return options_; }
  const NodeRelation& relation() const { return rel_; }

 private:
  // Declared before rel_: the snapshot ctor binds rel_ to snapshot_'s
  // relation, so the snapshot must be initialized first.
  SnapshotPtr snapshot_;
  const NodeRelation& rel_;
  ExecOptions options_;
};

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_EXECUTOR_H_
