// SQL → ExecPlan parser. Accepts the dialect GenerateSql emits:
//
//   SELECT DISTINCT <alias>.tid, <alias>.id
//   FROM <table> AS <alias> [, <table> AS <alias>]...
//   [WHERE <boolean expression>]
//
// where the boolean expression is built from column/literal comparisons,
// AND / OR / NOT, parentheses, and EXISTS (SELECT 1 FROM ... WHERE ...)
// subqueries whose conditions may reference enclosing aliases (correlation,
// resolved lexically; at most one level up, which is all the generator
// produces).

#ifndef LPATHDB_SQL_PARSER_H_
#define LPATHDB_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "plan/exec_plan.h"

namespace lpath {
namespace sql {

/// Parses a complete SELECT statement into an ExecPlan.
Result<ExecPlan> ParseSql(std::string_view text);

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_PARSER_H_
