#include "sql/fingerprint.h"

#include <string>
#include <unordered_map>

namespace lpath {
namespace sql {

namespace {

/// splitmix64-style combine: absorbs one word into the running hash.
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// FNV-1a over the bytes of an unresolved string literal.
uint64_t HashBytes(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mirror of a comparison operator, for canonicalizing literal-first
/// conjuncts without mutating the plan (optimizer.cc keeps its own copy;
/// the orientation contract is shared, the code deliberately local).
CmpOp Mirror(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;
  }
}

/// Operand reference classes (hashed tags; values are arbitrary but fixed —
/// changing them invalidates persisted fingerprints, of which there are
/// none today).
enum : uint64_t {
  kTagLiteralNum = 0x11,
  kTagLiteralStr = 0x12,
  kTagLocalVar = 0x21,
  kTagEscapedOuter = 0x22,
  kTagNestedOuter = 0x23,
};

/// Shared traversal state: the alpha map renames outer references that
/// escape the hashed root (depth 0) by order of first appearance.
struct Hasher {
  uint64_t h = 0x5ca1ab1e0ddba11ULL;
  std::unordered_map<int, int> alpha;

  void Word(uint64_t v) { h = Mix(h, v); }

  void Op(const Operand& o, int depth) {
    if (o.is_literal()) {
      // `col` carries no meaning for literals; only the payload hashes.
      if (o.is_string) {
        Word(kTagLiteralStr);
        Word(HashBytes(o.str));
      } else {
        Word(kTagLiteralNum);
        Word(static_cast<uint64_t>(o.num));
      }
      return;
    }
    if (o.is_outer() && depth == 0) {
      const auto [it, inserted] =
          alpha.emplace(o.outer_index(), static_cast<int>(alpha.size()));
      (void)inserted;
      Word(kTagEscapedOuter);
      Word(static_cast<uint64_t>(it->second));
    } else if (o.is_outer()) {
      Word(kTagNestedOuter);
      Word(static_cast<uint64_t>(o.outer_index()));
    } else {
      Word(kTagLocalVar);
      Word(static_cast<uint64_t>(o.var));
    }
    Word(static_cast<uint64_t>(o.col));
  }

  void Cmp(const Conjunct& c, int depth) {
    // Canonical orientation: column-first, mirroring the operator.
    if (c.lhs.is_literal() && !c.rhs.is_literal()) {
      Op(c.rhs, depth);
      Word(static_cast<uint64_t>(Mirror(c.op)));
      Op(c.lhs, depth);
      return;
    }
    Op(c.lhs, depth);
    Word(static_cast<uint64_t>(c.op));
    Op(c.rhs, depth);
  }

  void Filter(const BoolExpr& e, int depth) {
    Word(static_cast<uint64_t>(e.kind) + 0x40);
    switch (e.kind) {
      case BoolExpr::Kind::kAnd:
      case BoolExpr::Kind::kOr:
        Filter(*e.lhs, depth);
        Filter(*e.rhs, depth);
        return;
      case BoolExpr::Kind::kNot:
        Filter(*e.lhs, depth);
        return;
      case BoolExpr::Kind::kCmp:
        Cmp(e.cmp, depth);
        return;
      case BoolExpr::Kind::kExists:
        // The subplan's own conjuncts sit one level deeper: its outer
        // references target *this* plan's variables, which are structural
        // here, not escaping.
        Plan(*e.sub, depth + 1);
        return;
    }
  }

  void Plan(const ExecPlan& p, int depth) {
    Word(static_cast<uint64_t>(p.num_vars));
    Word(static_cast<uint64_t>(p.output_var));
    Word(p.conjuncts.size());
    for (const Conjunct& c : p.conjuncts) Cmp(c, depth);
    Word(p.filters.size());
    for (const auto& f : p.filters) Filter(*f, depth);
  }
};

/// Lockstep equality under the Hasher's canonicalization. The alpha maps
/// must form a consistent bijection between the two plans' escaping outer
/// variables.
struct Matcher {
  std::unordered_map<int, int> a2b;
  std::unordered_map<int, int> b2a;

  bool Op(const Operand& x, const Operand& y, int depth) {
    if (x.is_literal() != y.is_literal()) return false;
    if (x.is_literal()) {
      if (x.is_string != y.is_string) return false;
      return x.is_string ? x.str == y.str : x.num == y.num;
    }
    if (x.col != y.col) return false;
    if (x.is_outer() != y.is_outer()) return false;
    if (x.is_outer() && depth == 0) {
      const auto [fwd, fwd_new] = a2b.emplace(x.outer_index(), y.outer_index());
      const auto [rev, rev_new] = b2a.emplace(y.outer_index(), x.outer_index());
      (void)fwd_new;
      (void)rev_new;
      return fwd->second == y.outer_index() && rev->second == x.outer_index();
    }
    return x.var == y.var;
  }

  bool Cmp(const Conjunct& x, const Conjunct& y, int depth) {
    // Orient both sides column-first before comparing.
    const bool xm = x.lhs.is_literal() && !x.rhs.is_literal();
    const bool ym = y.lhs.is_literal() && !y.rhs.is_literal();
    const Operand& xl = xm ? x.rhs : x.lhs;
    const Operand& xr = xm ? x.lhs : x.rhs;
    const Operand& yl = ym ? y.rhs : y.lhs;
    const Operand& yr = ym ? y.lhs : y.rhs;
    const CmpOp xop = xm ? Mirror(x.op) : x.op;
    const CmpOp yop = ym ? Mirror(y.op) : y.op;
    return xop == yop && Op(xl, yl, depth) && Op(xr, yr, depth);
  }

  bool Filter(const BoolExpr& x, const BoolExpr& y, int depth) {
    if (x.kind != y.kind) return false;
    switch (x.kind) {
      case BoolExpr::Kind::kAnd:
      case BoolExpr::Kind::kOr:
        return Filter(*x.lhs, *y.lhs, depth) && Filter(*x.rhs, *y.rhs, depth);
      case BoolExpr::Kind::kNot:
        return Filter(*x.lhs, *y.lhs, depth);
      case BoolExpr::Kind::kCmp:
        return Cmp(x.cmp, y.cmp, depth);
      case BoolExpr::Kind::kExists:
        return Plan(*x.sub, *y.sub, depth + 1);
    }
    return false;
  }

  bool Plan(const ExecPlan& x, const ExecPlan& y, int depth) {
    if (x.num_vars != y.num_vars || x.output_var != y.output_var) return false;
    if (x.conjuncts.size() != y.conjuncts.size()) return false;
    if (x.filters.size() != y.filters.size()) return false;
    for (size_t i = 0; i < x.conjuncts.size(); ++i) {
      if (!Cmp(x.conjuncts[i], y.conjuncts[i], depth)) return false;
    }
    for (size_t i = 0; i < x.filters.size(); ++i) {
      if (!Filter(*x.filters[i], *y.filters[i], depth)) return false;
    }
    return true;
  }
};

}  // namespace

uint64_t PlanFingerprint(const ExecPlan& plan) {
  Hasher hasher;
  hasher.Plan(plan, /*depth=*/0);
  return hasher.h;
}

bool PlanEquals(const ExecPlan& a, const ExecPlan& b) {
  Matcher matcher;
  return matcher.Plan(a, b, /*depth=*/0);
}

}  // namespace sql
}  // namespace lpath
