// A shared, striped memo table for EXISTS subquery results.
//
// The executor memoizes correlated EXISTS subplans on their correlation
// binding. Historically that map was private to one Runner, so every
// shard of a parallel query — and every re-execution of a cached plan —
// re-derived the same subquery answers. An ExistsMemo hoists the map out:
// it is keyed by (subplan key, correlation binding row) and safe for
// concurrent readers and writers, so all morsels of a query, and all
// executions sharing one prepared plan, consult a single table.
//
// The subplan key is caller-chosen: a per-plan memo keys by the EXISTS
// node's address (unique within one prepared plan), while the
// snapshot-scoped subplan registry keys by *structural fingerprint* so
// equal subtrees in different top-level plans share one key space (see
// sql/fingerprint.h and service/subplan_memo.h).
//
// Correctness contract: an entry is a pure function of (subplan, binding
// row) over one immutable NodeRelation, so a memo must never outlive the
// (prepared plan, relation) pair it was filled against. The service pairs
// each cached plan with its own memo and drops both together — on LRU
// eviction and on snapshot hot swap (sessions are rebuilt), so stale
// entries are unreachable by construction.
//
// Locking is striped: the key hash picks one of kStripes independently
// locked hash maps, so concurrent morsels rarely contend. Insertion stops
// when a stripe reaches its capacity share (lookups keep working); a
// bounded memo degrades to recomputation, never to wrong answers.

#ifndef LPATHDB_SQL_EXISTS_MEMO_H_
#define LPATHDB_SQL_EXISTS_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace lpath {
namespace sql {

class ExistsMemo {
 public:
  /// A memo holding at most ~`max_entries` results (split over the
  /// stripes; at least one per stripe).
  explicit ExistsMemo(size_t max_entries = kDefaultMaxEntries);

  ExistsMemo(const ExistsMemo&) = delete;
  ExistsMemo& operator=(const ExistsMemo&) = delete;

  /// The memoized result for subplan key `sub_key` evaluated under
  /// `binding`, if present.
  std::optional<bool> Lookup(uint64_t sub_key, uint64_t binding) const;

  /// Records a result. Duplicate inserts are benign (both racers computed
  /// the same pure function); inserts into a full stripe are dropped.
  void Insert(uint64_t sub_key, uint64_t binding, bool value);

  /// Entries currently held (approximate under concurrent inserts).
  size_t size() const;

  static constexpr size_t kDefaultMaxEntries = 1 << 20;

 private:
  static constexpr size_t kStripes = 16;

  struct Key {
    uint64_t sub;
    uint64_t binding;
    bool operator==(const Key& o) const {
      return sub == o.sub && binding == o.binding;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix64-style mix of the two words.
      uint64_t h = k.sub ^ (k.binding + 0x9e3779b97f4a7c15ULL);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebULL;
      h ^= h >> 31;
      return static_cast<size_t>(h);
    }
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, bool, KeyHash> map;
  };

  Stripe& StripeFor(const Key& k) const {
    return stripes_[KeyHash{}(k) & (kStripes - 1)];
  }

  const size_t per_stripe_capacity_;
  mutable Stripe stripes_[kStripes];
};

}  // namespace sql
}  // namespace lpath

#endif  // LPATHDB_SQL_EXISTS_MEMO_H_
