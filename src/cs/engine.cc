#include "cs/engine.h"

#include "cs/matcher.h"
#include "cs/parser.h"

namespace lpath {
namespace cs {

Result<QueryResult> CorpusSearchEngine::Run(const std::string& query) const {
  LPATH_ASSIGN_OR_RETURN(CsQuery parsed, ParseCsQuery(query));
  return EvalCsQuery(corpus_, parsed);
}

}  // namespace cs
}  // namespace lpath
