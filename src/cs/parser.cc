#include "cs/parser.h"

#include <cctype>
#include <map>

#include "common/str_util.h"

namespace lpath {
namespace cs {

namespace {

const std::map<std::string, CsRel>& RelTable() {
  static const std::map<std::string, CsRel> kRels = {
      {"exists", CsRel::kExists},
      {"idoms", CsRel::kIDoms},
      {"doms", CsRel::kDoms},
      {"idomsfirst", CsRel::kIDomsFirst},
      {"idomslast", CsRel::kIDomsLast},
      {"idomsonly", CsRel::kIDomsOnly},
      {"idomsnumber", CsRel::kIDomsNumber},
      {"domsfirst", CsRel::kDomsFirst},
      {"domslast", CsRel::kDomsLast},
      {"iprecedes", CsRel::kIPrecedes},
      {"precedes", CsRel::kPrecedes},
      {"ifollows", CsRel::kIFollows},
      {"follows", CsRel::kFollows},
      {"isisterprecedes", CsRel::kISisterPrecedes},
      {"sisterprecedes", CsRel::kSisterPrecedes},
      {"isisterfollows", CsRel::kISisterFollows},
      {"sisterfollows", CsRel::kSisterFollows},
      {"hassister", CsRel::kHasSister},
  };
  return kRels;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<CsQuery> Parse() {
    CsQuery query;
    // Header lines. The "query:" keyword introduces the expression; other
    // recognized headers are "node:" and "focus:".
    for (;;) {
      SkipWs();
      if (EatKeyword("node:")) {
        LPATH_ASSIGN_OR_RETURN(std::string glob, ScanToken("boundary glob"));
        query.boundary_glob = std::move(glob);
        continue;
      }
      if (EatKeyword("focus:")) {
        LPATH_ASSIGN_OR_RETURN(Arg arg, ScanArg());
        query.focus = arg.Identity();
        continue;
      }
      (void)EatKeyword("query:");
      break;
    }
    LPATH_ASSIGN_OR_RETURN(query.expr, ParseOr());
    SkipWs();
    if (pos_ != text_.size()) return Error("unexpected trailing input");
    return query;
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  void SkipWs() {
    for (;;) {
      while (!AtEnd() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (Peek() == '/' && Peek(1) == '/') {  // line comment
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("CorpusSearch parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }
  bool EatKeyword(std::string_view kw) {
    // Case-insensitive prefix match.
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    pos_ += kw.size();
    return true;
  }

  static bool IsTokenChar(char c) {
    return !std::isspace(static_cast<unsigned char>(c)) && c != '(' &&
           c != ')' && c != '=';
  }

  Result<std::string> ScanToken(const std::string& what) {
    SkipWs();
    size_t start = pos_;
    while (!AtEnd() && IsTokenChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected " + what);
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Arg> ScanArg() {
    LPATH_ASSIGN_OR_RETURN(std::string glob, ScanToken("pattern"));
    Arg arg;
    arg.glob = std::move(glob);
    if (Peek() == '=') {
      ++pos_;
      LPATH_ASSIGN_OR_RETURN(arg.name, ScanToken("variable name"));
    }
    return arg;
  }

  Result<std::unique_ptr<CsExpr>> ParseOr() {
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<CsExpr> lhs, ParseAnd());
    for (;;) {
      SkipWs();
      if (!EatWord("OR")) return lhs;
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<CsExpr> rhs, ParseAnd());
      auto node = std::make_unique<CsExpr>(CsExpr::Kind::kOr);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<std::unique_ptr<CsExpr>> ParseAnd() {
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<CsExpr> lhs, ParseUnary());
    for (;;) {
      SkipWs();
      if (!EatWord("AND")) return lhs;
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<CsExpr> rhs, ParseUnary());
      auto node = std::make_unique<CsExpr>(CsExpr::Kind::kAnd);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  /// Case-insensitive word followed by a non-token character.
  bool EatWord(std::string_view w) {
    const size_t save = pos_;
    if (!EatKeyword(w)) return false;
    if (!AtEnd() && IsTokenChar(text_[pos_]) && text_[pos_] != '(') {
      pos_ = save;
      return false;
    }
    return true;
  }

  Result<std::unique_ptr<CsExpr>> ParseUnary() {
    SkipWs();
    if (EatWord("NOT")) {
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<CsExpr> inner, ParseUnary());
      auto node = std::make_unique<CsExpr>(CsExpr::Kind::kNot);
      node->lhs = std::move(inner);
      return node;
    }
    SkipWs();
    if (Peek() != '(') return Error("expected '('");
    ++pos_;
    SkipWs();
    // Group or condition? A group starts with '(' or NOT.
    if (Peek() == '(' ||
        (std::tolower(static_cast<unsigned char>(Peek())) == 'n' &&
         std::tolower(static_cast<unsigned char>(Peek(1))) == 'o' &&
         std::tolower(static_cast<unsigned char>(Peek(2))) == 't' &&
         !IsTokenChar(Peek(3)))) {
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<CsExpr> inner, ParseOr());
      SkipWs();
      if (Peek() != ')') return Error("expected ')'");
      ++pos_;
      return inner;
    }
    // Condition: A rel [n] [B]
    auto node = std::make_unique<CsExpr>(CsExpr::Kind::kCond);
    LPATH_ASSIGN_OR_RETURN(node->cond.a, ScanArg());
    LPATH_ASSIGN_OR_RETURN(std::string rel_word, ScanToken("relation"));
    auto it = RelTable().find(AsciiToLower(rel_word));
    if (it == RelTable().end()) {
      return Error("unknown relation " + rel_word);
    }
    node->cond.rel = it->second;
    if (node->cond.rel == CsRel::kIDomsNumber) {
      LPATH_ASSIGN_OR_RETURN(std::string num, ScanToken("ordinal"));
      node->cond.n = std::atoi(num.c_str());
      if (node->cond.n == 0) return Error("iDomsNumber needs a nonzero n");
    }
    SkipWs();
    if (Peek() != ')') {
      LPATH_ASSIGN_OR_RETURN(node->cond.b, ScanArg());
      node->cond.has_b = true;
      SkipWs();
    }
    if (Peek() != ')') return Error("expected ')'");
    ++pos_;
    // Binary relations need a second argument.
    if (!node->cond.has_b && node->cond.rel != CsRel::kExists &&
        node->cond.rel != CsRel::kHasSister) {
      return Error("relation requires a second argument");
    }
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<CsQuery> ParseCsQuery(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace cs
}  // namespace lpath
