// CorpusSearch-style evaluator: per-boundary interpreted search with
// same-instance variables — the per-tree-scan cost model the paper's
// Figures 7–9 show for CorpusSearch.

#ifndef LPATHDB_CS_MATCHER_H_
#define LPATHDB_CS_MATCHER_H_

#include "common/result.h"
#include "cs/query.h"
#include "lpath/engine.h"
#include "tgrep/corpus_file.h"

namespace lpath {
namespace cs {

/// Evaluates a query against the word-leaf view of the corpus. Returns the
/// distinct focus-variable matches as (tid, element id) hits.
Result<QueryResult> EvalCsQuery(const tgrep::TgrepCorpus& corpus,
                                const CsQuery& query);

}  // namespace cs
}  // namespace lpath

#endif  // LPATHDB_CS_MATCHER_H_
