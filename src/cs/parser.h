// Parser for CorpusSearch-style query files (see cs/query.h).

#ifndef LPATHDB_CS_PARSER_H_
#define LPATHDB_CS_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "cs/query.h"

namespace lpath {
namespace cs {

/// Parses a query. Accepts the full file form ("node:"/"focus:"/"query:"
/// lines, in any order, query last) or a bare query expression.
Result<CsQuery> ParseCsQuery(std::string_view text);

}  // namespace cs
}  // namespace lpath

#endif  // LPATHDB_CS_PARSER_H_
