#include "cs/matcher.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace lpath {
namespace cs {

namespace {

using tgrep::TgrepTree;

/// A resolved variable: identity, glob, appearance order.
struct Var {
  std::string identity;
  std::string glob;
};

/// Analysis of the query: shared variables (in evaluation order, focus
/// first) and which conditions form the conjunctive skeleton.
struct Analysis {
  std::vector<Var> vars;
  int focus = 0;
  std::vector<const Condition*> skeleton;  // AND-reachable conditions
  const CsExpr* root = nullptr;
};

void CollectConditions(const CsExpr& e, bool conjunctive,
                       std::vector<const Condition*>* all,
                       std::vector<const Condition*>* skeleton) {
  switch (e.kind) {
    case CsExpr::Kind::kAnd:
      CollectConditions(*e.lhs, conjunctive, all, skeleton);
      CollectConditions(*e.rhs, conjunctive, all, skeleton);
      return;
    case CsExpr::Kind::kOr:
      CollectConditions(*e.lhs, false, all, skeleton);
      CollectConditions(*e.rhs, false, all, skeleton);
      return;
    case CsExpr::Kind::kNot:
      CollectConditions(*e.lhs, false, all, skeleton);
      return;
    case CsExpr::Kind::kCond:
      all->push_back(&e.cond);
      if (conjunctive) skeleton->push_back(&e.cond);
      return;
  }
}

// NOLINTNEXTLINE(readability-function-size)
Result<Analysis> Analyze(const CsQuery& query) {
  Analysis out;
  out.root = query.expr.get();
  std::vector<const Condition*> all;
  CollectConditions(*query.expr, true, &all, &out.skeleton);
  if (all.empty()) return Status::InvalidArgument("query has no conditions");

  // Occurrence counts decide same-instance sharing.
  std::map<std::string, int> count;
  std::map<std::string, bool> is_first_or_named;
  std::map<std::string, std::string> glob_of;
  auto visit = [&](const Arg& arg, bool first_pos) -> Status {
    const std::string id = arg.Identity();
    count[id] += 1;
    if (first_pos || !arg.name.empty()) is_first_or_named[id] = true;
    auto it = glob_of.find(id);
    if (it == glob_of.end()) {
      glob_of[id] = arg.glob;
    } else if (it->second != arg.glob) {
      return Status::InvalidArgument("variable " + id +
                                     " used with conflicting patterns '" +
                                     it->second + "' and '" + arg.glob + "'");
    }
    return Status::OK();
  };
  for (const Condition* c : all) {
    LPATH_RETURN_IF_ERROR(visit(c->a, /*first_pos=*/true));
    if (c->has_b) LPATH_RETURN_IF_ERROR(visit(c->b, /*first_pos=*/false));
  }

  // Variables in appearance order; locals (unnamed, single second-arg
  // occurrence) are handled inside condition evaluation. Declaring a focus
  // promotes that identity to a shared variable.
  std::set<std::string> added;
  auto consider = [&](const Arg& arg, bool first_pos) {
    const std::string id = arg.Identity();
    const bool shared = first_pos || is_first_or_named[id] ||
                        count[id] >= 2 || id == query.focus;
    if (shared && !added.count(id)) {
      added.insert(id);
      out.vars.push_back(Var{id, arg.glob});
    }
  };
  for (const Condition* c : all) {
    consider(c->a, true);
    if (c->has_b) consider(c->b, false);
  }

  // Focus: explicit, else the first variable.
  if (!query.focus.empty()) {
    int idx = -1;
    for (size_t i = 0; i < out.vars.size(); ++i) {
      if (out.vars[i].identity == query.focus) idx = static_cast<int>(i);
    }
    if (idx < 0) {
      return Status::InvalidArgument("focus variable " + query.focus +
                                     " does not occur as a shared variable");
    }
    out.focus = idx;
  }
  // Evaluate the focus variable first so matches can be deduplicated with
  // early exit over the remaining assignment search.
  if (out.focus != 0) std::swap(out.vars[0], out.vars[out.focus]);
  out.focus = 0;
  return out;
}

/// Per-tree evaluation context.
class TreeEval {
 public:
  TreeEval(const TgrepTree& tree, const Interner& interner,
           const Analysis& analysis)
      : t_(tree), interner_(interner), a_(analysis) {}

  /// Collects satisfied focus nodes within the subtree of `boundary`.
  void Search(int32_t boundary, std::set<int32_t>* focus_elems) {
    boundary_ = boundary;
    subtree_end_ = SubtreeEnd(boundary);
    assignment_.assign(a_.vars.size(), -1);
    SearchVar(0, focus_elems);
  }

 private:
  bool GlobLabel(int32_t node, const std::string& glob) const {
    return GlobMatch(glob, interner_.name(t_.label[node]));
  }

  int32_t SubtreeEnd(int32_t node) const {
    int32_t cur = node;
    for (;;) {
      if (t_.next_sibling[cur] >= 0) return t_.next_sibling[cur];
      cur = t_.parent[cur];
      if (cur < 0) return static_cast<int32_t>(t_.size());
    }
  }

  bool InBoundary(int32_t node) const {
    return node >= boundary_ && node < subtree_end_;
  }

  void SearchVar(size_t vi, std::set<int32_t>* focus_elems) {
    if (vi == a_.vars.size()) {
      if (EvalExpr(*a_.root)) {
        focus_elems->insert(t_.elem_id[assignment_[0]]);
      }
      return;
    }
    for (int32_t node = boundary_; node < subtree_end_; ++node) {
      if (!GlobLabel(node, a_.vars[vi].glob)) continue;
      assignment_[vi] = node;
      // Prune with skeleton conditions that just became fully assigned.
      bool ok = true;
      for (const Condition* c : a_.skeleton) {
        if (!ConditionAssigned(*c)) continue;
        if (!EvalCondition(*c)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        // Early exit: once the focus value is known to succeed, stop
        // exploring alternative assignments for it.
        if (vi == 0 &&
            focus_elems->count(t_.elem_id[node]) > 0) {
          assignment_[vi] = -1;
          continue;
        }
        SearchVar(vi + 1, focus_elems);
      }
      assignment_[vi] = -1;
    }
  }

  int VarIndex(const std::string& identity) const {
    for (size_t i = 0; i < a_.vars.size(); ++i) {
      if (a_.vars[i].identity == identity) return static_cast<int>(i);
    }
    return -1;
  }

  bool ConditionAssigned(const Condition& c) const {
    const int ia = VarIndex(c.a.Identity());
    if (ia < 0 || assignment_[ia] < 0) return false;
    if (c.has_b) {
      const int ib = VarIndex(c.b.Identity());
      if (ib >= 0 && assignment_[ib] < 0) return false;  // shared, unbound
    }
    return true;
  }

  bool EvalExpr(const CsExpr& e) const {
    switch (e.kind) {
      case CsExpr::Kind::kAnd:
        return EvalExpr(*e.lhs) && EvalExpr(*e.rhs);
      case CsExpr::Kind::kOr:
        return EvalExpr(*e.lhs) || EvalExpr(*e.rhs);
      case CsExpr::Kind::kNot:
        return !EvalExpr(*e.lhs);
      case CsExpr::Kind::kCond:
        return EvalCondition(e.cond);
    }
    return false;
  }

  bool EvalCondition(const Condition& c) const {
    const int ia = VarIndex(c.a.Identity());
    const int32_t na = assignment_[ia];
    if (na < 0) return false;
    if (c.rel == CsRel::kExists) return true;
    if (c.rel == CsRel::kHasSister && !c.has_b) {
      const int32_t p = t_.parent[na];
      return p >= 0 && t_.first_child[p] != t_.last_child[p];
    }
    const int ib = c.has_b ? VarIndex(c.b.Identity()) : -1;
    if (ib >= 0) {
      const int32_t nb = assignment_[ib];
      return nb >= 0 && Rel(c, na, nb);
    }
    // Local existential: scan the boundary subtree.
    for (int32_t nb = boundary_; nb < subtree_end_; ++nb) {
      if (GlobLabel(nb, c.b.glob) && Rel(c, na, nb)) return true;
    }
    return false;
  }

  bool OnChain(int32_t from, int32_t to,
               const std::vector<int32_t>& next) const {
    for (int32_t c = next[from]; c >= 0; c = next[c]) {
      if (c == to) return true;
    }
    return false;
  }

  bool Rel(const Condition& c, int32_t a, int32_t b) const {
    switch (c.rel) {
      case CsRel::kExists:
        return true;
      case CsRel::kIDoms:
        return t_.parent[b] == a;
      case CsRel::kDoms: {
        for (int32_t p = t_.parent[b]; p >= 0; p = t_.parent[p]) {
          if (p == a) return true;
        }
        return false;
      }
      case CsRel::kIDomsFirst:
        return t_.first_child[a] == b;
      case CsRel::kIDomsLast:
        return t_.last_child[a] == b;
      case CsRel::kIDomsOnly:
        return t_.first_child[a] == b && t_.last_child[a] == b;
      case CsRel::kIDomsNumber: {
        if (t_.parent[b] != a) return false;
        int pos = 1;
        for (int32_t s = t_.prev_sibling[b]; s >= 0; s = t_.prev_sibling[s]) {
          ++pos;
        }
        if (c.n > 0) return pos == c.n;
        int rpos = 1;
        for (int32_t s = t_.next_sibling[b]; s >= 0; s = t_.next_sibling[s]) {
          ++rpos;
        }
        return rpos == -c.n;
      }
      case CsRel::kDomsFirst:
        return OnChain(a, b, t_.first_child);
      case CsRel::kDomsLast:
        return OnChain(a, b, t_.last_child);
      case CsRel::kIPrecedes:
        return t_.left[b] == t_.right[a];
      case CsRel::kPrecedes:
        return t_.left[b] >= t_.right[a];
      case CsRel::kIFollows:
        return t_.left[a] == t_.right[b];
      case CsRel::kFollows:
        return t_.left[a] >= t_.right[b];
      case CsRel::kISisterPrecedes:
        return t_.next_sibling[a] == b;
      case CsRel::kSisterPrecedes:
        return OnChain(a, b, t_.next_sibling);
      case CsRel::kISisterFollows:
        return t_.prev_sibling[a] == b;
      case CsRel::kSisterFollows:
        return OnChain(a, b, t_.prev_sibling);
      case CsRel::kHasSister:
        return t_.parent[a] >= 0 && t_.parent[b] == t_.parent[a] && a != b;
    }
    return false;
  }

  const TgrepTree& t_;
  const Interner& interner_;
  const Analysis& a_;
  int32_t boundary_ = 0;
  int32_t subtree_end_ = 0;
  std::vector<int32_t> assignment_;
};

}  // namespace

Result<QueryResult> EvalCsQuery(const tgrep::TgrepCorpus& corpus,
                                const CsQuery& query) {
  LPATH_ASSIGN_OR_RETURN(Analysis analysis, Analyze(query));
  const bool root_boundary = query.boundary_glob == "$ROOT";

  QueryResult out;
  for (size_t tid = 0; tid < corpus.size(); ++tid) {
    const TgrepTree& tree = corpus.tree(tid);
    if (tree.size() == 0) continue;
    TreeEval eval(tree, corpus.interner(), analysis);
    std::set<int32_t> focus_elems;
    if (root_boundary) {
      eval.Search(0, &focus_elems);
    } else {
      for (int32_t node = 0; node < static_cast<int32_t>(tree.size());
           ++node) {
        if (!tree.is_word[node] &&
            GlobMatch(query.boundary_glob,
                      corpus.interner().name(tree.label[node]))) {
          eval.Search(node, &focus_elems);
        }
      }
    }
    for (int32_t elem : focus_elems) {
      out.hits.push_back(Hit{static_cast<int32_t>(tid), elem});
    }
  }
  out.Normalize();
  return out;
}

}  // namespace cs
}  // namespace lpath
