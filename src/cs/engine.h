// CorpusSearchEngine: the QueryEngine facade over the CorpusSearch-style
// baseline.

#ifndef LPATHDB_CS_ENGINE_H_
#define LPATHDB_CS_ENGINE_H_

#include <string>

#include "lpath/engine.h"
#include "tgrep/corpus_file.h"

namespace lpath {
namespace cs {

/// Query engine speaking the CorpusSearch-style query-file language.
/// Results are distinct focus-variable nodes mapped into the shared
/// (tid, id) space.
class CorpusSearchEngine : public QueryEngine {
 public:
  explicit CorpusSearchEngine(const Corpus& corpus)
      : corpus_(tgrep::TgrepCorpus::Build(corpus)) {}

  std::string name() const override { return "CorpusSearch"; }

  Result<QueryResult> Run(const std::string& query) const override;

 private:
  tgrep::TgrepCorpus corpus_;
};

}  // namespace cs
}  // namespace lpath

#endif  // LPATHDB_CS_ENGINE_H_
