// CorpusSearch-style query language (Randall's tool, the paper's second
// baseline). A query file looks like:
//
//   node:  $ROOT            // boundary: glob over tags, or $ROOT
//   focus: NP=b             // which variable's matches are counted
//   query: (NP=a iDoms NP=b) AND NOT (NP=a Doms JJ)
//
// Argument patterns are globs ('*'/'?') with optional '=name' suffixes.
// Same-instance semantics as in CorpusSearch: two occurrences of the same
// pattern text (or the same '=name') denote the same node; a pattern that
// occurs only once as a second argument is a local existential.
//
// Relations: exists, iDoms, Doms, iDomsFirst, iDomsLast, iDomsOnly,
// iDomsNumber <n>, domsFirst, domsLast (transitive edge alignment — our
// documented extension so the full 23-query suite is expressible),
// iPrecedes, Precedes, iFollows, Follows, iSisterPrecedes, sisterPrecedes,
// iSisterFollows, sisterFollows, hasSister. Words are leaf nodes, so
// (IN iDoms of) tests the word under a pre-terminal.

#ifndef LPATHDB_CS_QUERY_H_
#define LPATHDB_CS_QUERY_H_

#include <memory>
#include <string>
#include <vector>

namespace lpath {
namespace cs {

enum class CsRel {
  kExists,
  kIDoms,
  kDoms,
  kIDomsFirst,
  kIDomsLast,
  kIDomsOnly,
  kIDomsNumber,
  kDomsFirst,
  kDomsLast,
  kIPrecedes,
  kPrecedes,
  kIFollows,
  kFollows,
  kISisterPrecedes,
  kSisterPrecedes,
  kISisterFollows,
  kSisterFollows,
  kHasSister,
};

/// An argument pattern: glob + optional variable name.
struct Arg {
  std::string glob;
  std::string name;  // from "=name"; empty if unnamed

  /// Variable identity: the name if given, otherwise the glob text.
  std::string Identity() const { return name.empty() ? glob : name; }
};

struct Condition {
  Arg a;
  CsRel rel = CsRel::kExists;
  int n = 0;  // kIDomsNumber
  Arg b;      // unused for kExists / kHasSister-without-pattern
  bool has_b = false;
};

/// Boolean expression over conditions.
struct CsExpr {
  enum class Kind { kAnd, kOr, kNot, kCond };
  Kind kind = Kind::kCond;
  std::unique_ptr<CsExpr> lhs, rhs;
  Condition cond;

  explicit CsExpr(Kind k) : kind(k) {}
};

/// A parsed query.
struct CsQuery {
  std::string boundary_glob = "$ROOT";  // "$ROOT" or a tag glob
  std::string focus;                     // variable identity; empty = first
  std::unique_ptr<CsExpr> expr;
};

}  // namespace cs
}  // namespace lpath

#endif  // LPATHDB_CS_QUERY_H_
