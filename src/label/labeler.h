// Label assignment.
//
// ComputeLPathLabels implements Definition 4.1: terminals get consecutive
// unit intervals [i, i+1) with the leftmost terminal at left=1; a
// non-terminal spans its leaf descendants; depth starts at 1 for the root;
// ids are pre-order positions (1-based, so nonzero); pid is the parent's id
// (0 for the root). One depth-first traversal, as the paper notes.
//
// ComputeXPathLabels implements the DeHaan et al. tag-position labeling used
// as the Figure 10 baseline: left/right are the document-order positions of
// a node's start and end tags (a single counter incremented at every tag).

#ifndef LPATHDB_LABEL_LABELER_H_
#define LPATHDB_LABEL_LABELER_H_

#include <vector>

#include "label/axes.h"
#include "tree/tree.h"

namespace lpath {

/// Which labeling scheme a relation was built with.
enum class LabelScheme {
  kLPath,  ///< Definition 4.1 (leaf intervals). Supports every LPath axis.
  kXPath,  ///< DeHaan-style tag positions. XPath axes only (Figure 10).
};

/// Dispatches to the right Table 2 predicate for `scheme`.
bool AxisMatches(LabelScheme scheme, Axis axis, const Label& ctx,
                 const Label& cand);

/// Fills labels[i] for every node i of `tree` (labels is resized).
void ComputeLPathLabels(const Tree& tree, std::vector<Label>* labels);

/// Tag-position labels for the Figure 10 baseline.
void ComputeXPathLabels(const Tree& tree, std::vector<Label>* labels);

/// Computes labels under either scheme.
void ComputeLabels(LabelScheme scheme, const Tree& tree,
                   std::vector<Label>* labels);

}  // namespace lpath

#endif  // LPATHDB_LABEL_LABELER_H_
