#include "label/axes.h"

namespace lpath {

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf: return "self";
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowing: return "following";
    case Axis::kFollowingOrSelf: return "following-or-self";
    case Axis::kImmediateFollowing: return "immediate-following";
    case Axis::kPreceding: return "preceding";
    case Axis::kPrecedingOrSelf: return "preceding-or-self";
    case Axis::kImmediatePreceding: return "immediate-preceding";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kFollowingSiblingOrSelf: return "following-sibling-or-self";
    case Axis::kImmediateFollowingSibling:
      return "immediate-following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
    case Axis::kPrecedingSiblingOrSelf: return "preceding-sibling-or-self";
    case Axis::kImmediatePrecedingSibling:
      return "immediate-preceding-sibling";
    case Axis::kAttribute: return "attribute";
  }
  return "?";
}

std::string_view AxisAbbreviation(Axis axis) {
  switch (axis) {
    case Axis::kSelf: return ".";
    case Axis::kChild: return "/";
    case Axis::kParent: return "\\";
    case Axis::kDescendant: return "//";  // informal; see parser
    case Axis::kAncestor: return "\\\\";
    case Axis::kFollowing: return "-->";
    case Axis::kImmediateFollowing: return "->";
    case Axis::kPreceding: return "<--";
    case Axis::kImmediatePreceding: return "<-";
    case Axis::kFollowingSibling: return "==>";
    case Axis::kImmediateFollowingSibling: return "=>";
    case Axis::kPrecedingSibling: return "<==";
    case Axis::kImmediatePrecedingSibling: return "<=";
    case Axis::kAttribute: return "@";
    default: return "";
  }
}

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf: return Axis::kSelf;
    case Axis::kChild: return Axis::kParent;
    case Axis::kParent: return Axis::kChild;
    case Axis::kDescendant: return Axis::kAncestor;
    case Axis::kAncestor: return Axis::kDescendant;
    case Axis::kDescendantOrSelf: return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf: return Axis::kDescendantOrSelf;
    case Axis::kFollowing: return Axis::kPreceding;
    case Axis::kPreceding: return Axis::kFollowing;
    case Axis::kFollowingOrSelf: return Axis::kPrecedingOrSelf;
    case Axis::kPrecedingOrSelf: return Axis::kFollowingOrSelf;
    case Axis::kImmediateFollowing: return Axis::kImmediatePreceding;
    case Axis::kImmediatePreceding: return Axis::kImmediateFollowing;
    case Axis::kFollowingSibling: return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling: return Axis::kFollowingSibling;
    case Axis::kFollowingSiblingOrSelf: return Axis::kPrecedingSiblingOrSelf;
    case Axis::kPrecedingSiblingOrSelf: return Axis::kFollowingSiblingOrSelf;
    case Axis::kImmediateFollowingSibling:
      return Axis::kImmediatePrecedingSibling;
    case Axis::kImmediatePrecedingSibling:
      return Axis::kImmediateFollowingSibling;
    case Axis::kAttribute: return Axis::kAttribute;
  }
  return axis;
}

bool AxisIncludesSelf(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
    case Axis::kDescendantOrSelf:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingOrSelf:
    case Axis::kPrecedingOrSelf:
    case Axis::kFollowingSiblingOrSelf:
    case Axis::kPrecedingSiblingOrSelf:
      return true;
    default:
      return false;
  }
}

Axis AxisBase(Axis axis) {
  switch (axis) {
    case Axis::kDescendantOrSelf: return Axis::kDescendant;
    case Axis::kAncestorOrSelf: return Axis::kAncestor;
    case Axis::kFollowingOrSelf: return Axis::kFollowing;
    case Axis::kPrecedingOrSelf: return Axis::kPreceding;
    case Axis::kFollowingSiblingOrSelf: return Axis::kFollowingSibling;
    case Axis::kPrecedingSiblingOrSelf: return Axis::kPrecedingSibling;
    default: return axis;
  }
}

bool IsImmediateAxis(Axis axis) {
  switch (axis) {
    case Axis::kImmediateFollowing:
    case Axis::kImmediatePreceding:
    case Axis::kImmediateFollowingSibling:
    case Axis::kImmediatePrecedingSibling:
      return true;
    default:
      return false;
  }
}

bool IsSiblingAxis(Axis axis) {
  switch (axis) {
    case Axis::kFollowingSibling:
    case Axis::kFollowingSiblingOrSelf:
    case Axis::kImmediateFollowingSibling:
    case Axis::kPrecedingSibling:
    case Axis::kPrecedingSiblingOrSelf:
    case Axis::kImmediatePrecedingSibling:
      return true;
    default:
      return false;
  }
}

bool LPathAxisMatches(Axis axis, const Label& x, const Label& y) {
  switch (axis) {
    case Axis::kSelf:
      return y.id == x.id;
    case Axis::kChild:
      return y.pid == x.id;
    case Axis::kParent:
      return y.id == x.pid;
    case Axis::kDescendant:
      // Containment property + depth to resolve unary branching (§4).
      return y.left >= x.left && y.right <= x.right && y.depth > x.depth;
    case Axis::kDescendantOrSelf:
      return y.id == x.id ||
             (y.left >= x.left && y.right <= x.right && y.depth > x.depth);
    case Axis::kAncestor:
      return y.left <= x.left && y.right >= x.right && y.depth < x.depth;
    case Axis::kAncestorOrSelf:
      return y.id == x.id ||
             (y.left <= x.left && y.right >= x.right && y.depth < x.depth);
    case Axis::kFollowing:
      return y.left >= x.right;
    case Axis::kFollowingOrSelf:
      return y.id == x.id || y.left >= x.right;
    case Axis::kImmediateFollowing:
      // Adjacency property: leftmost leaf of y immediately follows the
      // rightmost leaf of x  <=>  y.left = x.right.
      return y.left == x.right;
    case Axis::kPreceding:
      return y.right <= x.left;
    case Axis::kPrecedingOrSelf:
      return y.id == x.id || y.right <= x.left;
    case Axis::kImmediatePreceding:
      return y.right == x.left;
    case Axis::kFollowingSibling:
      return y.pid == x.pid && y.left >= x.right;
    case Axis::kFollowingSiblingOrSelf:
      return y.pid == x.pid && (y.id == x.id || y.left >= x.right);
    case Axis::kImmediateFollowingSibling:
      // Sibling intervals tile their parent's span, so the next sibling
      // starts exactly where this one ends.
      return y.pid == x.pid && y.left == x.right;
    case Axis::kPrecedingSibling:
      return y.pid == x.pid && y.right <= x.left;
    case Axis::kPrecedingSiblingOrSelf:
      return y.pid == x.pid && (y.id == x.id || y.right <= x.left);
    case Axis::kImmediatePrecedingSibling:
      return y.pid == x.pid && y.right == x.left;
    case Axis::kAttribute:
      // Attribute rows carry their element's label (Definition 4.1, rule 8);
      // the kind/name restriction is applied by the caller.
      return y.id == x.id;
  }
  return false;
}

bool XPathAxisMatches(Axis axis, const Label& x, const Label& y) {
  switch (axis) {
    case Axis::kSelf:
      return y.id == x.id;
    case Axis::kChild:
      return y.pid == x.id;
    case Axis::kParent:
      return y.id == x.pid;
    case Axis::kDescendant:
      // Tag positions nest strictly, so no depth column is needed — the
      // scheme's advertised strength [11].
      return y.left > x.left && y.right < x.right;
    case Axis::kDescendantOrSelf:
      return y.id == x.id || (y.left > x.left && y.right < x.right);
    case Axis::kAncestor:
      return y.left < x.left && y.right > x.right;
    case Axis::kAncestorOrSelf:
      return y.id == x.id || (y.left < x.left && y.right > x.right);
    case Axis::kFollowing:
      return y.left > x.right;
    case Axis::kFollowingOrSelf:
      return y.id == x.id || y.left > x.right;
    case Axis::kPreceding:
      return y.right < x.left;
    case Axis::kPrecedingOrSelf:
      return y.id == x.id || y.right < x.left;
    case Axis::kFollowingSibling:
      return y.pid == x.pid && y.left > x.right;
    case Axis::kFollowingSiblingOrSelf:
      return y.pid == x.pid && (y.id == x.id || y.left > x.right);
    case Axis::kPrecedingSibling:
      return y.pid == x.pid && y.right < x.left;
    case Axis::kPrecedingSiblingOrSelf:
      return y.pid == x.pid && (y.id == x.id || y.right < x.left);
    case Axis::kAttribute:
      return y.id == x.id;
    case Axis::kImmediateFollowing:
    case Axis::kImmediatePreceding:
    case Axis::kImmediateFollowingSibling:
    case Axis::kImmediatePrecedingSibling:
      return false;  // Not decidable from tag positions.
  }
  return false;
}

bool XPathLabelingSupports(Axis axis) { return !IsImmediateAxis(axis); }

}  // namespace lpath
