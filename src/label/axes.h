// The LPath axis inventory (Table 1 of the paper) and the label-comparison
// semantics of every axis (Table 2), for both labeling schemes:
//
//   - the LPath labeling of Definition 4.1 (leaf intervals), which decides
//     every axis including immediate-following/-preceding and the sibling
//     "immediate" variants;
//   - the "XPath labeling" of DeHaan et al. [11] (start/end *tag positions*),
//     which the paper compares against in Figure 10 and which cannot decide
//     the immediate axes.

#ifndef LPATHDB_LABEL_AXES_H_
#define LPATHDB_LABEL_AXES_H_

#include <cstdint>
#include <string_view>

namespace lpath {

/// Node label per Definition 4.1: (left, right, depth, id, pid).
/// `name`/`value` live in the relation, not here. The same struct is reused
/// for the XPath tag-position labeling (left/right are tag positions there).
struct Label {
  int32_t left = 0;
  int32_t right = 0;
  int32_t depth = 0;
  int32_t id = 0;   ///< Unique per tree, nonzero.
  int32_t pid = 0;  ///< Parent id; 0 for the root.

  bool operator==(const Label&) const = default;
};

/// All LPath axes (Table 1), including the or-self closures.
enum class Axis : uint8_t {
  kSelf,
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowing,
  kFollowingOrSelf,
  kImmediateFollowing,
  kPreceding,
  kPrecedingOrSelf,
  kImmediatePreceding,
  kFollowingSibling,
  kFollowingSiblingOrSelf,
  kImmediateFollowingSibling,
  kPrecedingSibling,
  kPrecedingSiblingOrSelf,
  kImmediatePrecedingSibling,
  kAttribute,
};

/// Full axis name, e.g. "immediate-following-sibling".
std::string_view AxisName(Axis axis);

/// LPath abbreviation from Table 1 ("->", "==>", "\\", ...); empty for axes
/// with no abbreviation (or-self variants).
std::string_view AxisAbbreviation(Axis axis);

/// The inverse axis: child<->parent, immediate-following<->immediate-
/// preceding, etc. self and attribute are their own inverses (attribute's
/// inverse is only used internally by the executor).
Axis InverseAxis(Axis axis);

/// True for self / *-or-self axes.
bool AxisIncludesSelf(Axis axis);

/// The non-reflexive base of an or-self axis (identity otherwise).
Axis AxisBase(Axis axis);

/// True if the axis is one of the four immediate-* primitives, which only
/// the LPath labeling scheme supports (Lemma 3.1 / Section 4).
bool IsImmediateAxis(Axis axis);

/// True for following/preceding-sibling family (needs pid equality).
bool IsSiblingAxis(Axis axis);

/// Table 2 — decides whether `cand` is on `axis` of `ctx` under the LPath
/// labeling (Definition 4.1). Both labels must come from the same tree.
/// Attribute rows share their element's label; callers must additionally
/// constrain element-vs-attribute kind (see storage::NodeRelation::RowKind).
bool LPathAxisMatches(Axis axis, const Label& ctx, const Label& cand);

/// Same decision under the XPath tag-position labeling. Returns false for
/// the immediate-* axes (they are not decidable in that scheme; callers
/// should reject such queries up front via XPathLabelingSupports()).
bool XPathAxisMatches(Axis axis, const Label& ctx, const Label& cand);

/// Whether the XPath labeling scheme can decide `axis`.
bool XPathLabelingSupports(Axis axis);

}  // namespace lpath

#endif  // LPATHDB_LABEL_AXES_H_
