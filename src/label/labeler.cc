#include "label/labeler.h"

namespace lpath {

bool AxisMatches(LabelScheme scheme, Axis axis, const Label& ctx,
                 const Label& cand) {
  return scheme == LabelScheme::kLPath ? LPathAxisMatches(axis, ctx, cand)
                                       : XPathAxisMatches(axis, ctx, cand);
}

void ComputeLPathLabels(const Tree& tree, std::vector<Label>* labels) {
  const NodeId n = static_cast<NodeId>(tree.size());
  labels->assign(n, Label{});
  if (n == 0) return;

  // Pass 1 (forward over pre-order ids): depth, id, pid, and leaf intervals.
  // Node ids are pre-order, so a parent is always processed before its
  // children; leaves are encountered left-to-right in pre-order.
  int32_t next_leaf = 1;
  for (NodeId i = 0; i < n; ++i) {
    Label& lab = (*labels)[i];
    lab.id = i + 1;  // nonzero unique identifier (Definition 4.1, rule 6)
    const NodeId parent = tree.parent(i);
    if (parent == kNoNode) {
      lab.depth = 1;
      lab.pid = 0;
    } else {
      lab.depth = (*labels)[parent].depth + 1;
      lab.pid = (*labels)[parent].id;
    }
    if (tree.is_leaf(i)) {
      lab.left = next_leaf;
      lab.right = next_leaf + 1;
      ++next_leaf;
    }
  }

  // Pass 2 (backward): a non-terminal spans its children, i.e. its leaf
  // descendants (rule 4). Children have larger pre-order ids, so a backward
  // sweep sees them completed.
  for (NodeId i = n - 1; i >= 0; --i) {
    if (tree.is_leaf(i)) continue;
    Label& lab = (*labels)[i];
    lab.left = (*labels)[tree.first_child(i)].left;
    lab.right = (*labels)[tree.last_child(i)].right;
  }
}

void ComputeXPathLabels(const Tree& tree, std::vector<Label>* labels) {
  const NodeId n = static_cast<NodeId>(tree.size());
  labels->assign(n, Label{});
  if (n == 0) return;

  // depth/id/pid identical to the LPath scheme so that the two relations
  // differ only in the left/right columns — the controlled comparison of
  // Figure 10.
  for (NodeId i = 0; i < n; ++i) {
    Label& lab = (*labels)[i];
    lab.id = i + 1;
    const NodeId parent = tree.parent(i);
    if (parent == kNoNode) {
      lab.depth = 1;
      lab.pid = 0;
    } else {
      lab.depth = (*labels)[parent].depth + 1;
      lab.pid = (*labels)[parent].id;
    }
  }

  // One counter over start/end tags; iterative DFS immune to deep input.
  int32_t pos = 1;
  NodeId cur = tree.root();
  while (cur != kNoNode) {
    (*labels)[cur].left = pos++;
    if (tree.first_child(cur) != kNoNode) {
      cur = tree.first_child(cur);
      continue;
    }
    // Leaf: close it, then close ancestors until a next sibling exists.
    (*labels)[cur].right = pos++;
    while (cur != kNoNode && tree.next_sibling(cur) == kNoNode) {
      cur = tree.parent(cur);
      if (cur != kNoNode) (*labels)[cur].right = pos++;
    }
    if (cur != kNoNode) cur = tree.next_sibling(cur);
  }
}

void ComputeLabels(LabelScheme scheme, const Tree& tree,
                   std::vector<Label>* labels) {
  if (scheme == LabelScheme::kLPath) {
    ComputeLPathLabels(tree, labels);
  } else {
    ComputeXPathLabels(tree, labels);
  }
}

}  // namespace lpath
