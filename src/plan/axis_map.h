// Axis → conjunct mapping (Table 2 of the paper), shared by the LPath→plan
// compiler and (in string form) by the SQL generator. Given an edge
// "candidate var `to` is on `axis` of context var `from`", returns the label
// comparisons that decide it under the chosen labeling scheme.

#ifndef LPATHDB_PLAN_AXIS_MAP_H_
#define LPATHDB_PLAN_AXIS_MAP_H_

#include <vector>

#include "common/result.h"
#include "label/labeler.h"
#include "plan/exec_plan.h"

namespace lpath {

/// Appends the conjuncts for `axis(from → to)` to `out` (tid equality is
/// NOT included; the caller links tids once per variable).
///
/// Or-self axes cannot be expressed conjunctively; they are returned as a
/// disjunctive BoolExpr via AxisFilter below — this function rejects them.
/// The XPath labeling scheme rejects the immediate-* axes (Lemma 3.1 /
/// Section 4: tag positions cannot decide adjacency).
Status AppendAxisConjuncts(LabelScheme scheme, Axis axis, int from, int to,
                           std::vector<Conjunct>* out);

/// True if the axis needs a disjunction (the or-self axes).
bool AxisNeedsDisjunction(Axis axis);

/// Builds the disjunctive filter for an or-self axis:
/// (base-axis conjuncts) OR (to.id = from.id).
Result<std::unique_ptr<BoolExpr>> AxisFilter(LabelScheme scheme, Axis axis,
                                             int from, int to);

}  // namespace lpath

#endif  // LPATHDB_PLAN_AXIS_MAP_H_
