// LPath AST → ExecPlan compiler (the query-translation module of Section 4).
//
// One relation alias per location step; Table 2 conjuncts per axis edge;
// subtree scoping compiles to descendant-or-self containment conjuncts
// against the innermost scope variable; '^'/'$' to left/right equality with
// the scope variable (or an implicit root variable, pid = 0, when no scope
// is open); predicates to EXISTS / NOT EXISTS subplans correlated on the
// context variable.
//
// Positive existential predicates (plain paths and attribute-value
// equality) are *unnested* into the main join graph by default: because
// the projection is DISTINCT (tid, id), a positive EXISTS is a semi-join
// and can live in the same FROM list — which is exactly how the paper's
// LPath→SQL translation ships value tests, and what lets the optimizer
// anchor on the {value, tid, id} index for queries like //_[@lex=saw].
// Negated or disjunctive predicates stay as (NOT) EXISTS filters.
//
// Rejections (Status::NotSupported):
//   - position()/last()/[n] predicates (the relational translation has no
//     order context — the paper's engine never receives them);
//   - under the XPath labeling scheme: immediate-* axes and edge alignment
//     (Lemma 3.1 — this is what Figure 10's "11 of 23 queries" restriction
//     is about).

#ifndef LPATHDB_PLAN_COMPILE_H_
#define LPATHDB_PLAN_COMPILE_H_

#include "common/result.h"
#include "label/labeler.h"
#include "lpath/ast.h"
#include "plan/exec_plan.h"

namespace lpath {

struct CompileOptions {
  LabelScheme scheme = LabelScheme::kLPath;
  /// Unnest positive existential predicates into the main join graph
  /// (semantically safe under DISTINCT projection). Disable for the
  /// ablation benchmark.
  bool unnest_predicates = true;
};

/// Compiles a top-level (absolute) LPath query.
Result<ExecPlan> CompileLPath(const LocationPath& query,
                              const CompileOptions& options = {});

}  // namespace lpath

#endif  // LPATHDB_PLAN_COMPILE_H_
