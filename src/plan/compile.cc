#include "plan/compile.h"

#include "plan/axis_map.h"

namespace lpath {

namespace {

/// True if the predicate can be unnested into the enclosing join graph:
/// a positive path existence, an attribute '=' comparison, or a
/// conjunction of unnestable parts. (An '!=' comparison is also a positive
/// existential — "some attribute with another value exists".)
bool IsUnnestable(const PredExpr& e) {
  switch (e.kind) {
    case PredExpr::Kind::kAnd:
      return IsUnnestable(*e.lhs) && IsUnnestable(*e.rhs);
    case PredExpr::Kind::kPath:
    case PredExpr::Kind::kCompare:
      return true;
    default:
      return false;
  }
}

class Compiler {
 public:
  explicit Compiler(const CompileOptions& options) : options_(options) {}

  Result<ExecPlan> CompileQuery(const LocationPath& query) {
    if (!query.absolute || query.steps.empty()) {
      return Status::InvalidArgument(
          "top-level queries must be absolute and non-empty");
    }
    ExecPlan plan;
    LPATH_ASSIGN_OR_RETURN(
        int last_var,
        AppendPath(query, /*anchor=*/-1, &plan));
    plan.output_var = last_var;
    return plan;
  }

 private:
  const CompileOptions& options_;

  static Conjunct VarLit(int var, PlanCol col, CmpOp op, Operand lit) {
    return Conjunct{Operand::Column(var, col), op, std::move(lit)};
  }
  static Conjunct VarVar(int a, PlanCol ca, CmpOp op, int b, PlanCol cb) {
    return Conjunct{Operand::Column(a, ca), op, Operand::Column(b, cb)};
  }

  /// Appends the steps of `path` to `plan`, allocating fresh variables.
  /// `anchor` is the context variable the first step's axis relates to:
  ///   -1                      — top-level absolute path;
  ///   v >= 0                  — a variable of this plan (unnested paths);
  ///   kOuterVarBase + v       — a parent-plan variable (EXISTS subplans).
  /// Returns the variable of the final step.
  Result<int> AppendPath(const LocationPath& path, int anchor,
                         ExecPlan* plan) {
    const bool absolute = anchor < 0;

    // Innermost open scope; leading '{' scopes to the anchor.
    int scope_var = -1;
    if (!absolute && path.leading_scopes > 0) scope_var = anchor;

    int prev_var = anchor;
    int last_var = -1;
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const Step& step = path.steps[i];
      const bool is_attr = step.axis == Axis::kAttribute;
      const int var = plan->num_vars++;

      // --- tid link + axis edge -------------------------------------------
      if (i == 0 && absolute) {
        switch (step.axis) {
          case Axis::kDescendant:
          case Axis::kDescendantOrSelf:
            break;  // any node of any tree
          case Axis::kChild:
            plan->conjuncts.push_back(
                VarLit(var, PlanCol::kPid, CmpOp::kEq, Operand::Number(0)));
            break;
          default:
            return Status::NotSupported(
                "absolute queries must start with '/' or '//'");
        }
      } else {
        plan->conjuncts.push_back(
            VarVar(var, PlanCol::kTid, CmpOp::kEq, prev_var, PlanCol::kTid));
        LPATH_RETURN_IF_ERROR(AddAxis(step.axis, prev_var, var, plan));
      }

      // --- node test --------------------------------------------------------
      if (step.test.is_wildcard()) {
        plan->conjuncts.push_back(VarLit(var, PlanCol::kKind, CmpOp::kEq,
                                         Operand::Number(is_attr ? 1 : 0)));
      } else {
        const std::string name =
            is_attr ? "@" + step.test.name : step.test.name;
        plan->conjuncts.push_back(
            VarLit(var, PlanCol::kName, CmpOp::kEq, Operand::String(name)));
      }

      // --- scope containment -------------------------------------------------
      if (scope_var >= 0 && !is_attr) {
        plan->conjuncts.push_back(
            VarVar(var, PlanCol::kLeft, CmpOp::kGe, scope_var,
                   PlanCol::kLeft));
        plan->conjuncts.push_back(VarVar(var, PlanCol::kRight, CmpOp::kLe,
                                         scope_var, PlanCol::kRight));
        if (options_.scheme == LabelScheme::kLPath) {
          // Depth resolves unary chains (a same-interval ancestor of the
          // scope node must not pass). Tag positions nest strictly, so the
          // XPath scheme needs no depth column.
          plan->conjuncts.push_back(VarVar(var, PlanCol::kDepth, CmpOp::kGe,
                                           scope_var, PlanCol::kDepth));
        }
      }

      // --- edge alignment -----------------------------------------------------
      if (step.left_align || step.right_align) {
        if (options_.scheme == LabelScheme::kXPath) {
          return Status::NotSupported(
              "edge alignment requires the LPath labeling scheme");
        }
        int target = scope_var;
        if (target < 0) {
          LPATH_ASSIGN_OR_RETURN(target, EnsureRootVar(plan, var));
        }
        if (step.left_align) {
          plan->conjuncts.push_back(
              VarVar(var, PlanCol::kLeft, CmpOp::kEq, target, PlanCol::kLeft));
        }
        if (step.right_align) {
          plan->conjuncts.push_back(VarVar(var, PlanCol::kRight, CmpOp::kEq,
                                           target, PlanCol::kRight));
        }
      }

      // --- predicates -------------------------------------------------------------
      for (const PredExprPtr& pred : step.predicates) {
        if (options_.unnest_predicates && IsUnnestable(*pred)) {
          LPATH_RETURN_IF_ERROR(Unnest(*pred, var, plan));
        } else {
          LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> filter,
                                 CompilePred(*pred, var, plan));
          plan->filters.push_back(std::move(filter));
        }
      }

      // --- scope opening ------------------------------------------------------------
      if (step.opens_scopes > 0) scope_var = var;
      prev_var = var;
      last_var = var;
    }
    return last_var;
  }

  /// Unnests a positive predicate into `plan` as extra join variables
  /// anchored at `context_var` (a semi-join; sound under DISTINCT output).
  Status Unnest(const PredExpr& e, int context_var, ExecPlan* plan) {
    switch (e.kind) {
      case PredExpr::Kind::kAnd:
        LPATH_RETURN_IF_ERROR(Unnest(*e.lhs, context_var, plan));
        return Unnest(*e.rhs, context_var, plan);
      case PredExpr::Kind::kPath: {
        LPATH_ASSIGN_OR_RETURN(int last, AppendPath(e.path, context_var, plan));
        (void)last;  // existence only; the variable's bindings are the join
        return Status::OK();
      }
      case PredExpr::Kind::kCompare: {
        LPATH_ASSIGN_OR_RETURN(int attr_var,
                               AppendPath(e.path, context_var, plan));
        plan->conjuncts.push_back(VarLit(
            attr_var, PlanCol::kValue,
            e.cmp == CmpOp::kEq ? CmpOp::kEq : CmpOp::kNe,
            Operand::String(e.literal)));
        return Status::OK();
      }
      default:
        return Status::Internal("predicate is not unnestable");
    }
  }

  Status AddAxis(Axis axis, int from, int to, ExecPlan* plan) {
    if (AxisNeedsDisjunction(axis) && axis != Axis::kSelf) {
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<BoolExpr> filter,
                             AxisFilter(options_.scheme, axis, from, to));
      plan->filters.push_back(std::move(filter));
      return Status::OK();
    }
    return AppendAxisConjuncts(options_.scheme, axis, from, to,
                               &plan->conjuncts);
  }

  /// Adds (once per plan) a variable bound to the tree root, used as the
  /// alignment target when no scope is open. The root is the row with
  /// pid = 0.
  Result<int> EnsureRootVar(ExecPlan* plan, int tid_link) {
    if (root_var_ >= 0) return root_var_;
    root_var_ = plan->num_vars++;
    plan->conjuncts.push_back(VarVar(root_var_, PlanCol::kTid, CmpOp::kEq,
                                     tid_link, PlanCol::kTid));
    plan->conjuncts.push_back(
        VarLit(root_var_, PlanCol::kPid, CmpOp::kEq, Operand::Number(0)));
    plan->conjuncts.push_back(
        VarLit(root_var_, PlanCol::kKind, CmpOp::kEq, Operand::Number(0)));
    return root_var_;
  }

  Result<std::unique_ptr<BoolExpr>> CompilePred(const PredExpr& e,
                                                int context_var,
                                                ExecPlan* plan) {
    switch (e.kind) {
      case PredExpr::Kind::kAnd:
      case PredExpr::Kind::kOr: {
        auto node = std::make_unique<BoolExpr>(
            e.kind == PredExpr::Kind::kAnd ? BoolExpr::Kind::kAnd
                                           : BoolExpr::Kind::kOr);
        LPATH_ASSIGN_OR_RETURN(node->lhs,
                               CompilePred(*e.lhs, context_var, plan));
        LPATH_ASSIGN_OR_RETURN(node->rhs,
                               CompilePred(*e.rhs, context_var, plan));
        return node;
      }
      case PredExpr::Kind::kNot: {
        auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kNot);
        LPATH_ASSIGN_OR_RETURN(node->lhs,
                               CompilePred(*e.lhs, context_var, plan));
        return node;
      }
      case PredExpr::Kind::kPath: {
        return CompileExists(e.path, context_var, /*compare=*/nullptr);
      }
      case PredExpr::Kind::kCompare: {
        return CompileExists(e.path, context_var, &e);
      }
      case PredExpr::Kind::kPosition:
      case PredExpr::Kind::kLast:
      case PredExpr::Kind::kNumber:
        return Status::NotSupported(
            "position()/last() predicates are not supported by the "
            "relational translation; use the navigational engine");
    }
    return Status::Internal("unhandled predicate kind");
  }

  /// Builds EXISTS(subplan) for a relative predicate path. When `compare`
  /// is set, the path's final attribute step carries a value comparison.
  Result<std::unique_ptr<BoolExpr>> CompileExists(const LocationPath& path,
                                                  int context_var,
                                                  const PredExpr* compare) {
    if (path.steps.empty()) {
      return Status::InvalidArgument("empty predicate path");
    }
    Compiler sub_compiler(options_);
    ExecPlan sub;
    LPATH_ASSIGN_OR_RETURN(
        int attr_var,
        sub_compiler.AppendPath(path, Operand::kOuterVarBase + context_var,
                                &sub));
    if (compare != nullptr) {
      // The parser guarantees the final step is an attribute step.
      sub.conjuncts.push_back(VarLit(
          attr_var, PlanCol::kValue,
          compare->cmp == CmpOp::kEq ? CmpOp::kEq : CmpOp::kNe,
          Operand::String(compare->literal)));
    }
    sub.output_var = 0;  // EXISTS subplans test existence; normalize so the
                         // SQL round trip is structurally exact.
    auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kExists);
    node->sub = std::make_unique<ExecPlan>(std::move(sub));
    return node;
  }

  int root_var_ = -1;
};

}  // namespace

Result<ExecPlan> CompileLPath(const LocationPath& query,
                              const CompileOptions& options) {
  Compiler compiler(options);
  return compiler.CompileQuery(query);
}

}  // namespace lpath
