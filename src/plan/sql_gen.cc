#include "plan/sql_gen.h"

#include <sstream>

namespace lpath {

namespace {

std::string_view OpText(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

class Generator {
 public:
  explicit Generator(const SqlGenOptions& options) : options_(options) {}

  std::string Top(const ExecPlan& plan) {
    std::ostringstream os;
    EmitSelect(plan, /*depth=*/0, /*exists=*/false, os);
    return os.str();
  }

 private:
  static char Prefix(int depth) { return static_cast<char>('a' + depth); }

  std::string Alias(int var, int depth) const {
    // Built with += rather than operator+ on two temporaries: gcc 12's
    // -Wrestrict misfires on the latter at -O2 (GCC PR 105651).
    const bool outer = var >= Operand::kOuterVarBase;
    std::string alias(1, Prefix(outer ? depth - 1 : depth));
    alias += std::to_string(outer ? var - Operand::kOuterVarBase : var);
    return alias;
  }

  void EmitOperand(const Operand& o, int depth, std::ostream& os) const {
    if (o.is_literal()) {
      if (o.is_string) {
        os << '\'';
        for (char c : o.str) {
          os << c;
          if (c == '\'') os << c;  // '' escaping
        }
        os << '\'';
      } else {
        os << o.num;
      }
      return;
    }
    os << Alias(o.var, depth) << '.' << PlanColName(o.col);
  }

  void EmitConjunct(const Conjunct& c, int depth, std::ostream& os) const {
    EmitOperand(c.lhs, depth, os);
    os << ' ' << OpText(c.op) << ' ';
    EmitOperand(c.rhs, depth, os);
  }

  void EmitBool(const BoolExpr& e, int depth, std::ostream& os) const {
    switch (e.kind) {
      case BoolExpr::Kind::kAnd:
        os << '(';
        EmitBool(*e.lhs, depth, os);
        os << " AND ";
        EmitBool(*e.rhs, depth, os);
        os << ')';
        return;
      case BoolExpr::Kind::kOr:
        os << '(';
        EmitBool(*e.lhs, depth, os);
        os << " OR ";
        EmitBool(*e.rhs, depth, os);
        os << ')';
        return;
      case BoolExpr::Kind::kNot:
        os << "NOT (";
        EmitBool(*e.lhs, depth, os);
        os << ')';
        return;
      case BoolExpr::Kind::kCmp:
        EmitConjunct(e.cmp, depth, os);
        return;
      case BoolExpr::Kind::kExists:
        EmitSelect(*e.sub, depth + 1, /*exists=*/true, os);
        return;
    }
  }

  void EmitSelect(const ExecPlan& plan, int depth, bool exists,
                  std::ostream& os) const {
    const char* sep = options_.pretty && depth == 0 ? "\n  " : " ";
    if (exists) {
      os << "EXISTS (SELECT 1";
    } else {
      const std::string out = Alias(plan.output_var, depth);
      os << "SELECT DISTINCT " << out << ".tid, " << out << ".id";
    }
    os << sep << "FROM ";
    for (int v = 0; v < plan.num_vars; ++v) {
      if (v > 0) os << ", ";
      os << options_.table << " AS " << Alias(v, depth);
    }
    bool first = true;
    auto begin_term = [&]() {
      os << (first ? std::string(sep) + "WHERE " : std::string(" AND "));
      first = false;
    };
    for (const Conjunct& c : plan.conjuncts) {
      begin_term();
      EmitConjunct(c, depth, os);
    }
    for (const auto& f : plan.filters) {
      begin_term();
      EmitBool(*f, depth, os);
    }
    if (exists) os << ')';
  }

  const SqlGenOptions& options_;
};

}  // namespace

std::string GenerateSql(const ExecPlan& plan, const SqlGenOptions& options) {
  Generator gen(options);
  return gen.Top(plan);
}

}  // namespace lpath
