#include "plan/exec_plan.h"

#include <sstream>

namespace lpath {

std::string_view PlanColName(PlanCol col) {
  switch (col) {
    case PlanCol::kTid: return "tid";
    case PlanCol::kLeft: return "left";
    case PlanCol::kRight: return "right";
    case PlanCol::kDepth: return "depth";
    case PlanCol::kId: return "id";
    case PlanCol::kPid: return "pid";
    case PlanCol::kName: return "name";
    case PlanCol::kValue: return "value";
    case PlanCol::kKind: return "kind";
  }
  return "?";
}

namespace {

std::string_view OpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

void AppendOperand(const Operand& o, std::ostream& os) {
  if (o.is_literal()) {
    if (o.is_string) {
      os << '\'' << o.str << '\'';
    } else {
      os << o.num;
    }
  } else if (o.is_outer()) {
    os << "outer" << o.outer_index() << '.' << PlanColName(o.col);
  } else {
    os << 'v' << o.var << '.' << PlanColName(o.col);
  }
}

void AppendConjunct(const Conjunct& c, std::ostream& os) {
  AppendOperand(c.lhs, os);
  os << ' ' << OpName(c.op) << ' ';
  AppendOperand(c.rhs, os);
}

void AppendBool(const BoolExpr& e, int indent, std::ostream& os);

void AppendPlan(const ExecPlan& p, int indent, std::ostream& os) {
  std::string pad(indent, ' ');
  os << pad << "plan vars=" << p.num_vars << " output=v" << p.output_var
     << '\n';
  for (const Conjunct& c : p.conjuncts) {
    os << pad << "  ";
    AppendConjunct(c, os);
    os << '\n';
  }
  for (const auto& f : p.filters) {
    AppendBool(*f, indent + 2, os);
  }
}

void AppendBool(const BoolExpr& e, int indent, std::ostream& os) {
  std::string pad(indent, ' ');
  switch (e.kind) {
    case BoolExpr::Kind::kAnd:
      os << pad << "and\n";
      AppendBool(*e.lhs, indent + 2, os);
      AppendBool(*e.rhs, indent + 2, os);
      return;
    case BoolExpr::Kind::kOr:
      os << pad << "or\n";
      AppendBool(*e.lhs, indent + 2, os);
      AppendBool(*e.rhs, indent + 2, os);
      return;
    case BoolExpr::Kind::kNot:
      os << pad << "not\n";
      AppendBool(*e.lhs, indent + 2, os);
      return;
    case BoolExpr::Kind::kCmp:
      os << pad;
      AppendConjunct(e.cmp, os);
      os << '\n';
      return;
    case BoolExpr::Kind::kExists:
      os << pad << "exists\n";
      AppendPlan(*e.sub, indent + 2, os);
      return;
  }
}

}  // namespace

std::unique_ptr<BoolExpr> CloneBoolExpr(const BoolExpr& e) {
  auto out = std::make_unique<BoolExpr>(e.kind);
  if (e.lhs) out->lhs = CloneBoolExpr(*e.lhs);
  if (e.rhs) out->rhs = CloneBoolExpr(*e.rhs);
  out->cmp = e.cmp;
  if (e.sub) out->sub = std::make_unique<ExecPlan>(e.sub->Clone());
  return out;
}

ExecPlan ExecPlan::Clone() const {
  ExecPlan out;
  out.num_vars = num_vars;
  out.conjuncts = conjuncts;
  out.output_var = output_var;
  out.filters.reserve(filters.size());
  for (const auto& f : filters) out.filters.push_back(CloneBoolExpr(*f));
  return out;
}

std::string ExecPlan::DebugString() const {
  std::ostringstream os;
  AppendPlan(*this, 0, os);
  return os.str();
}

}  // namespace lpath
