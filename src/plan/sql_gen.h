// ExecPlan → SQL text. The emitted dialect is exactly what the sql module
// parses back (round-trip tested), closing the paper's LPath → SQL → RDBMS
// loop:
//
//   SELECT DISTINCT a1.tid, a1.id
//   FROM nodes AS a0, nodes AS a1
//   WHERE a0.name = 'VP' AND a1.tid = a0.tid AND a1.pid = a0.id AND ...
//     AND EXISTS (SELECT 1 FROM nodes AS b0 WHERE ...)
//
// Alias prefixes encode nesting depth (a, b, c, ...), so correlated
// subqueries reference their parent's aliases unambiguously.

#ifndef LPATHDB_PLAN_SQL_GEN_H_
#define LPATHDB_PLAN_SQL_GEN_H_

#include <string>

#include "plan/exec_plan.h"

namespace lpath {

struct SqlGenOptions {
  std::string table = "nodes";
  bool pretty = false;  ///< newline-separated conjuncts for readability
};

/// Renders a top-level plan as a SELECT DISTINCT statement.
std::string GenerateSql(const ExecPlan& plan, const SqlGenOptions& options = {});

}  // namespace lpath

#endif  // LPATHDB_PLAN_SQL_GEN_H_
