#include "plan/axis_map.h"

namespace lpath {

namespace {

Conjunct Cmp(int var_a, PlanCol col_a, CmpOp op, int var_b, PlanCol col_b) {
  Conjunct c;
  c.lhs = Operand::Column(var_a, col_a);
  c.op = op;
  c.rhs = Operand::Column(var_b, col_b);
  return c;
}

}  // namespace

bool AxisNeedsDisjunction(Axis axis) { return AxisIncludesSelf(axis); }

Status AppendAxisConjuncts(LabelScheme scheme, Axis axis, int from, int to,
                           std::vector<Conjunct>* out) {
  if (AxisNeedsDisjunction(axis) && axis != Axis::kSelf) {
    return Status::Internal("or-self axes require AxisFilter");
  }
  if (scheme == LabelScheme::kXPath && !XPathLabelingSupports(axis)) {
    return Status::NotSupported(
        std::string("the XPath labeling scheme cannot evaluate the ") +
        std::string(AxisName(axis)) + " axis (Lemma 3.1)");
  }
  const bool xp = scheme == LabelScheme::kXPath;
  switch (axis) {
    case Axis::kSelf:
      out->push_back(Cmp(to, PlanCol::kId, CmpOp::kEq, from, PlanCol::kId));
      return Status::OK();
    case Axis::kChild:
      out->push_back(Cmp(to, PlanCol::kPid, CmpOp::kEq, from, PlanCol::kId));
      return Status::OK();
    case Axis::kParent:
      out->push_back(Cmp(to, PlanCol::kId, CmpOp::kEq, from, PlanCol::kPid));
      return Status::OK();
    case Axis::kDescendant:
      if (xp) {
        out->push_back(Cmp(to, PlanCol::kLeft, CmpOp::kGt, from, PlanCol::kLeft));
        out->push_back(Cmp(to, PlanCol::kRight, CmpOp::kLt, from, PlanCol::kRight));
      } else {
        out->push_back(Cmp(to, PlanCol::kLeft, CmpOp::kGe, from, PlanCol::kLeft));
        out->push_back(Cmp(to, PlanCol::kRight, CmpOp::kLe, from, PlanCol::kRight));
        out->push_back(Cmp(to, PlanCol::kDepth, CmpOp::kGt, from, PlanCol::kDepth));
      }
      return Status::OK();
    case Axis::kAncestor:
      if (xp) {
        out->push_back(Cmp(to, PlanCol::kLeft, CmpOp::kLt, from, PlanCol::kLeft));
        out->push_back(Cmp(to, PlanCol::kRight, CmpOp::kGt, from, PlanCol::kRight));
      } else {
        out->push_back(Cmp(to, PlanCol::kLeft, CmpOp::kLe, from, PlanCol::kLeft));
        out->push_back(Cmp(to, PlanCol::kRight, CmpOp::kGe, from, PlanCol::kRight));
        out->push_back(Cmp(to, PlanCol::kDepth, CmpOp::kLt, from, PlanCol::kDepth));
      }
      return Status::OK();
    case Axis::kFollowing:
      out->push_back(Cmp(to, PlanCol::kLeft, xp ? CmpOp::kGt : CmpOp::kGe,
                         from, PlanCol::kRight));
      return Status::OK();
    case Axis::kImmediateFollowing:
      out->push_back(Cmp(to, PlanCol::kLeft, CmpOp::kEq, from, PlanCol::kRight));
      return Status::OK();
    case Axis::kPreceding:
      out->push_back(Cmp(to, PlanCol::kRight, xp ? CmpOp::kLt : CmpOp::kLe,
                         from, PlanCol::kLeft));
      return Status::OK();
    case Axis::kImmediatePreceding:
      out->push_back(Cmp(to, PlanCol::kRight, CmpOp::kEq, from, PlanCol::kLeft));
      return Status::OK();
    case Axis::kFollowingSibling:
      out->push_back(Cmp(to, PlanCol::kPid, CmpOp::kEq, from, PlanCol::kPid));
      out->push_back(Cmp(to, PlanCol::kLeft, xp ? CmpOp::kGt : CmpOp::kGe,
                         from, PlanCol::kRight));
      return Status::OK();
    case Axis::kImmediateFollowingSibling:
      out->push_back(Cmp(to, PlanCol::kPid, CmpOp::kEq, from, PlanCol::kPid));
      out->push_back(Cmp(to, PlanCol::kLeft, CmpOp::kEq, from, PlanCol::kRight));
      return Status::OK();
    case Axis::kPrecedingSibling:
      out->push_back(Cmp(to, PlanCol::kPid, CmpOp::kEq, from, PlanCol::kPid));
      out->push_back(Cmp(to, PlanCol::kRight, xp ? CmpOp::kLt : CmpOp::kLe,
                         from, PlanCol::kLeft));
      return Status::OK();
    case Axis::kImmediatePrecedingSibling:
      out->push_back(Cmp(to, PlanCol::kPid, CmpOp::kEq, from, PlanCol::kPid));
      out->push_back(Cmp(to, PlanCol::kRight, CmpOp::kEq, from, PlanCol::kLeft));
      return Status::OK();
    case Axis::kAttribute:
      // Attribute rows carry their element's label and id (Definition 4.1
      // rule 8); kind/name constraints are added by the compiler.
      out->push_back(Cmp(to, PlanCol::kId, CmpOp::kEq, from, PlanCol::kId));
      return Status::OK();
    default:
      return Status::Internal("unexpected axis in AppendAxisConjuncts");
  }
}

Result<std::unique_ptr<BoolExpr>> AxisFilter(LabelScheme scheme, Axis axis,
                                             int from, int to) {
  std::vector<Conjunct> base;
  LPATH_RETURN_IF_ERROR(
      AppendAxisConjuncts(scheme, AxisBase(axis), from, to, &base));

  // base conjuncts AND-ed together.
  std::unique_ptr<BoolExpr> conj;
  for (const Conjunct& c : base) {
    auto leaf = std::make_unique<BoolExpr>(BoolExpr::Kind::kCmp);
    leaf->cmp = c;
    if (!conj) {
      conj = std::move(leaf);
    } else {
      auto node = std::make_unique<BoolExpr>(BoolExpr::Kind::kAnd);
      node->lhs = std::move(conj);
      node->rhs = std::move(leaf);
      conj = std::move(node);
    }
  }
  auto self = std::make_unique<BoolExpr>(BoolExpr::Kind::kCmp);
  self->cmp = Conjunct{Operand::Column(to, PlanCol::kId), CmpOp::kEq,
                       Operand::Column(from, PlanCol::kId)};
  auto out = std::make_unique<BoolExpr>(BoolExpr::Kind::kOr);
  out->lhs = std::move(conj);
  out->rhs = std::move(self);
  return out;
}

}  // namespace lpath
