// Figure 9: query time as the WSJ data size grows — the corpus replicated
// to 0.5x, 1x, 2x, 3x, 4x — for the paper's representative queries Q3
// (low-selectivity tags), Q6 (scoped edge alignment) and Q11 (scoped word
// bigram), on LPath / TGrep2 / CorpusSearch.
//
// Expected shape: near-linear growth for every system, with the LPath
// engine's curve lowest and flattest for the selective queries.

#include "bench_common.h"

namespace lpath {
namespace bench {

ReportTable& Fig9Table() {
  static ReportTable* table =
      new ReportTable("Figure 9 — scalability on replicated WSJ data");
  return *table;
}

void Fig9Register() {
  const double factors[] = {0.5, 1.0, 2.0, 3.0, 4.0};
  const int query_ids[] = {3, 6, 11};
  for (int id : query_ids) {
    const BenchmarkQuery& q = QueryById(id);
    for (double f : factors) {
      const EngineSet& fx = GetScaledWsj(f);
      char row[32];
      std::snprintf(row, sizeof(row), "Q%d@%.1fx", id, f);
      RegisterQueryBench(&Fig9Table(), row, "LPath", fx.lpath.get(), q.lpath);
      RegisterQueryBench(&Fig9Table(), row, "TGrep2", fx.tgrep.get(),
                         q.tgrep);
      RegisterQueryBench(&Fig9Table(), row, "CorpusSearch", fx.cs.get(),
                         q.cs);
    }
  }
}

void Fig9Print() {
  printf("%s",
         Fig9Table().Render({"LPath", "TGrep2", "CorpusSearch"}).c_str());
  printf("\n(base scale: %d sentences; factors replicate whole corpora as "
         "in the paper)\n",
         BenchmarkSentences());
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::Fig9Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::Fig9Print();
  return 0;
}
