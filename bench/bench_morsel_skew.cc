// Morsel scheduling on a skewed corpus: the measurement behind the
// skew-aware rework. The corpus is the SKEW profile (a few clause-chain
// giants among many tiny sentences), where splitting work evenly by tree
// *count* — the old scheduler — leaves whichever shard holds the giants
// running long after the rest went idle.
//
// Three execution shapes, per thread count:
//   Serial/threads:N    — one worker (baseline; flat in N);
//   EvenShard/threads:N — the old fixed split: N shards of equal tree
//                         count, one thread each (no stealing);
//   Morsel/threads:N    — the service's scheduler: ~4N row-balanced
//                         morsels pulled from the shared claim cursor.
// On multi-core hardware EvenShard trails Morsel by roughly the row share
// of the heaviest even shard; on a single-CPU container all three curves
// are flat and only the scheduling overhead differs.

#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "gen/generator.h"
#include "lpath/engines.h"
#include "service/query_service.h"
#include "sql/executor.h"
#include "sql/optimizer.h"
#include "storage/snapshot.h"

namespace lpath {
namespace bench {
namespace {

/// Skew-corpus scale (env LPATHDB_SKEW_SENTENCES, default 1000).
int SkewSentences() {
  static const int sentences = [] {
    const char* env = std::getenv("LPATHDB_SKEW_SENTENCES");
    const int n = env != nullptr ? std::atoi(env) : 0;
    return n > 0 ? n : 1000;
  }();
  return sentences;
}

const SnapshotPtr& SkewSnapshot() {
  static const SnapshotPtr* snap = [] {
    Result<Corpus> corpus = gen::GenerateSkewed(SkewSentences(), /*seed=*/41);
    if (!corpus.ok()) {
      fprintf(stderr, "skew corpus: %s\n", corpus.status().ToString().c_str());
      std::abort();
    }
    Result<SnapshotPtr> built = CorpusSnapshot::Build(std::move(corpus).value());
    if (!built.ok()) {
      fprintf(stderr, "snapshot: %s\n", built.status().ToString().c_str());
      std::abort();
    }
    return new SnapshotPtr(std::move(built).value());
  }();
  return *snap;
}

/// Scan-heavy and EXISTS-heavy shapes; the latter exercises the shared
/// memo across morsels.
const std::vector<std::string>& SkewQueries() {
  static const auto* queries = new std::vector<std::string>{
      "//NP//N",
      "//VP//_",
      "//VP[//N or @lex='zzzunknown']",
  };
  return *queries;
}

enum class Mode { kSerial, kMorsel };

std::map<std::pair<Mode, int>, service::QueryService*>& ServiceRegistry() {
  static auto* services =
      new std::map<std::pair<Mode, int>, service::QueryService*>();
  return *services;
}

service::QueryService* GetService(Mode mode, int threads) {
  service::QueryService*& slot = ServiceRegistry()[{mode, threads}];
  if (slot == nullptr) {
    service::QueryServiceOptions opts;
    opts.threads = threads;
    opts.adaptive_serial_rows = 0;
    if (mode == Mode::kSerial) opts.shards_per_query = 1;
    slot = new service::QueryService(SkewSnapshot(), opts);
    for (const std::string& q : SkewQueries()) (void)slot->GetPlan(q);
  }
  return slot;
}

void FreeServices() {
  for (auto& [key, service] : ServiceRegistry()) delete service;
  ServiceRegistry().clear();
}

/// Prepared plans for the even-shard baseline, built once.
const std::vector<const sql::PreparedPlan*>& PreparedQueries() {
  static const auto* plans = [] {
    auto* out = new std::vector<const sql::PreparedPlan*>();
    LPathEngine engine(SkewSnapshot()->relation());
    for (const std::string& q : SkewQueries()) {
      Result<ExecPlan> plan = engine.Translate(q);
      if (!plan.ok()) std::abort();
      Result<std::unique_ptr<sql::PreparedPlan>> pp =
          sql::Prepare(plan.value(), SkewSnapshot()->relation(), {});
      if (!pp.ok()) std::abort();
      out->push_back(std::move(pp).value().release());  // leaked (LSan-safe)
    }
    return out;
  }();
  return *plans;
}

ReportTable& SkewTable() {
  static ReportTable* table = new ReportTable(
      "Morsel scheduling on the SKEW corpus (suite pass; serial vs "
      "even-by-tid shards vs morsels)");
  return *table;
}

std::string ThreadColumn(int threads) {
  std::string c = "T";
  c += std::to_string(threads);
  return c;
}

void RecordSuite(benchmark::State& st, const std::string& row, int threads,
                 double total, uint64_t iters, size_t hits) {
  st.SetItemsProcessed(
      static_cast<int64_t>(iters * SkewQueries().size()));
  if (iters == 0) return;
  const double per_suite = total / static_cast<double>(iters);
  st.counters["qps"] =
      static_cast<double>(SkewQueries().size()) / per_suite;
  SkewTable().Record(row, ThreadColumn(threads),
                     Measurement{per_suite, hits, true});
}

/// Service-path suite pass (serial or morsel mode).
void BenchService(benchmark::State& st, Mode mode, int threads) {
  service::QueryService* service = GetService(mode, threads);
  // Delta-based counters: stats are cumulative across benchmark reruns of
  // the same registry service.
  const service::ServiceStats before = service->Stats();
  double total = 0.0;
  uint64_t iters = 0;
  size_t hits = 0;
  for (auto _ : st) {
    Timer timer;
    for (const std::string& q : SkewQueries()) {
      Result<QueryResult> r = service->Query(q);
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
      hits = r->count();
    }
    total += timer.ElapsedSeconds();
    ++iters;
  }
  if (mode == Mode::kMorsel) {
    const service::ServiceStats stats = service->Stats();
    const uint64_t d_queries = stats.queries - before.queries;
    const uint64_t d_morsels = stats.exec.morsels - before.exec.morsels;
    st.counters["morsels_per_query"] =
        d_queries > 0 ? static_cast<double>(d_morsels) /
                            static_cast<double>(d_queries)
                      : 0.0;
    st.counters["steals"] = static_cast<double>(stats.exec.steal_count -
                                                before.exec.steal_count);
    st.counters["shared_memo_hits"] = static_cast<double>(
        stats.exec.shared_memo_hits - before.exec.shared_memo_hits);
  }
  RecordSuite(st, mode == Mode::kSerial ? "Serial" : "Morsel", threads, total,
              iters, hits);
}

/// The old scheduler, reproduced exactly: N shards of equal *tree count*,
/// one dedicated thread each, no cursor to steal from.
void BenchEvenShard(benchmark::State& st, int threads) {
  const NodeRelation& rel = SkewSnapshot()->relation();
  sql::PlanExecutor executor(SkewSnapshot());
  const int32_t trees = rel.tree_count();
  double total = 0.0;
  uint64_t iters = 0;
  size_t hits = 0;
  for (auto _ : st) {
    Timer timer;
    for (const sql::PreparedPlan* pp : PreparedQueries()) {
      std::vector<QueryResult> parts(threads);
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (int i = 0; i < threads; ++i) {
        workers.emplace_back([&, i] {
          const int32_t lo = static_cast<int32_t>(int64_t{trees} * i / threads);
          const int32_t hi =
              static_cast<int32_t>(int64_t{trees} * (i + 1) / threads);
          Result<QueryResult> part = executor.ExecuteShard(*pp, lo, hi);
          if (part.ok()) parts[i] = std::move(part).value();
        });
      }
      for (std::thread& w : workers) w.join();
      QueryResult merged;
      for (QueryResult& part : parts) {
        merged.hits.insert(merged.hits.end(), part.hits.begin(),
                           part.hits.end());
      }
      merged.Normalize();
      hits = merged.count();
      benchmark::DoNotOptimize(merged);
    }
    total += timer.ElapsedSeconds();
    ++iters;
  }
  RecordSuite(st, "EvenShard", threads, total, iters, hits);
}

void RegisterAll() {
  for (int threads : {1, 2, 4, 8}) {
    for (const char* shape : {"Serial", "EvenShard", "Morsel"}) {
      std::string name = shape;
      name += "/threads:";
      name += std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [shape = std::string(shape), threads](benchmark::State& st) {
            if (shape == "Serial") {
              BenchService(st, Mode::kSerial, threads);
            } else if (shape == "Morsel") {
              BenchService(st, Mode::kMorsel, threads);
            } else {
              BenchEvenShard(st, threads);
            }
          })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintTables() {
  printf("%s", SkewTable().Render({"T1", "T2", "T4", "T8"}).c_str());
  printf("\n(per suite pass over %zu queries; SKEW corpus: %d sentences, "
         "LPATHDB_SKEW_SENTENCES overrides; speedup needs real cores)\n",
         SkewQueries().size(), SkewSentences());
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::FreeServices();
  return 0;
}
