// Figure 6: the data sets and the query workload.
//   (a) corpus characteristics (file size, node count, unique tags, depth)
//   (b) top-10 tag frequencies
//   (c) the 23 queries' result sizes — measured on our synthetic profiles
//       for LPath / TGrep2 / CorpusSearch (cross-checked for agreement),
//       next to the sizes the paper reports for the original corpora.
//
// The registered google-benchmarks time the expensive pipeline pieces:
// corpus generation, labeling + relation build, TGrep2 image compilation.

#include "bench_common.h"
#include "common/str_util.h"
#include "gen/generator.h"
#include "tree/stats.h"

namespace lpath {
namespace bench {

using lpath::FormatWithCommas;

void Fig6Register() {
  for (Dataset d : {Dataset::kWsj, Dataset::kSwb}) {
    const std::string suffix = DatasetName(d);
    benchmark::RegisterBenchmark(
        ("Generate/" + suffix).c_str(), [d](benchmark::State& st) {
          for (auto _ : st) {
            Result<Corpus> corpus =
                d == Dataset::kWsj
                    ? gen::GenerateWsj(BenchmarkSentences() / 4)
                    : gen::GenerateSwb(BenchmarkSentences() / 4);
            if (!corpus.ok()) {
              st.SkipWithError("generation failed");
              return;
            }
            benchmark::DoNotOptimize(corpus->TotalNodes());
          }
        });
    benchmark::RegisterBenchmark(
        ("BuildRelation/" + suffix).c_str(), [d](benchmark::State& st) {
          const EngineSet& fx = GetFixture(d);
          for (auto _ : st) {
            Result<NodeRelation> rel = NodeRelation::Build(fx.corpus());
            if (!rel.ok()) {
              st.SkipWithError("build failed");
              return;
            }
            benchmark::DoNotOptimize(rel->row_count());
          }
        });
    benchmark::RegisterBenchmark(
        ("BuildTgrepImage/" + suffix).c_str(), [d](benchmark::State& st) {
          const EngineSet& fx = GetFixture(d);
          for (auto _ : st) {
            tgrep::TgrepCorpus tc = tgrep::TgrepCorpus::Build(fx.corpus());
            benchmark::DoNotOptimize(tc.size());
          }
        });
  }
}

void PrintFig6a() {
  printf("\n=== Figure 6(a) — data set characteristics ===\n");
  printf("  %-18s | %14s | %14s\n", "", "WSJ profile", "SWB profile");
  CorpusStats wsj = ComputeStats(GetFixture(Dataset::kWsj).corpus());
  CorpusStats swb = ComputeStats(GetFixture(Dataset::kSwb).corpus());
  auto line = [](const char* label, const std::string& a,
                 const std::string& b) {
    printf("  %-18s | %14s | %14s\n", label, a.c_str(), b.c_str());
  };
  line("File Size (bytes)", FormatWithCommas(wsj.file_size_bytes),
       FormatWithCommas(swb.file_size_bytes));
  line("Trees", FormatWithCommas(wsj.tree_count),
       FormatWithCommas(swb.tree_count));
  line("Tree Nodes", FormatWithCommas(wsj.node_count),
       FormatWithCommas(swb.node_count));
  line("Words", FormatWithCommas(wsj.word_count),
       FormatWithCommas(swb.word_count));
  line("Unique Tags", FormatWithCommas(wsj.unique_tags),
       FormatWithCommas(swb.unique_tags));
  line("Maximum Depth", std::to_string(wsj.max_depth),
       std::to_string(swb.max_depth));
  printf("  (paper, full corpora: 35,983kB / 35,880kB; 3,484,899 / "
         "3,972,148 nodes; 1,274 / 715 tags; depth 36 / 36)\n");

  printf("\n=== Figure 6(b) — top 10 tags ===\n");
  printf("  %-4s | %-18s | %-18s\n", "#", "WSJ profile", "SWB profile");
  auto wt = wsj.TopTags(10);
  auto st = swb.TopTags(10);
  for (size_t i = 0; i < 10; ++i) {
    std::string a = i < wt.size()
                        ? wt[i].first + " " + FormatWithCommas(wt[i].second)
                        : "";
    std::string b = i < st.size()
                        ? st[i].first + " " + FormatWithCommas(st[i].second)
                        : "";
    printf("  %-4zu | %-18s | %-18s\n", i + 1, a.c_str(), b.c_str());
  }
  printf("  (paper WSJ: NP VP NN IN NNP S DT NP-SBJ -NONE- JJ;\n"
         "   paper SWB: -DFL- VP NP-SBJ . , S NP PRP NN RB)\n");
}

void PrintFig6c() {
  printf("\n=== Figure 6(c) — query result sizes ===\n");
  printf("  %-4s | %-10s | %-10s | %-10s | %-10s || %-10s | %-10s\n", "Q",
         "WSJ LPath", "WSJ TGrep2", "WSJ CS", "paper WSJ", "SWB LPath",
         "paper SWB");
  const EngineSet& wsj = GetFixture(Dataset::kWsj);
  const EngineSet& swb = GetFixture(Dataset::kSwb);
  int mismatches = 0;
  for (const BenchmarkQuery& q : The23Queries()) {
    auto count = [&](const QueryEngine* e, const char* text) -> std::string {
      Result<QueryResult> r = e->Run(text);
      if (!r.ok()) return "err";
      return FormatWithCommas(static_cast<int64_t>(r->count()));
    };
    const std::string l = count(wsj.lpath.get(), q.lpath);
    const std::string t = count(wsj.tgrep.get(), q.tgrep);
    const std::string c = count(wsj.cs.get(), q.cs);
    const std::string sl = count(swb.lpath.get(), q.lpath);
    if (l != t || l != c) ++mismatches;
    printf("  Q%-3d | %-10s | %-10s | %-10s | %-10zu || %-10s | %-10zu %s\n",
           q.id, l.c_str(), t.c_str(), c.c_str(), q.paper_wsj, sl.c_str(),
           q.paper_swb, (l != t || l != c) ? "  <-- engines disagree!" : "");
  }
  printf("  cross-engine mismatches: %d (expected 0)\n", mismatches);
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::Fig6Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintFig6a();
  lpath::bench::PrintFig6c();
  return 0;
}
