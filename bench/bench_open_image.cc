// Persistent-image open cost: CorpusSnapshot::Open (mmap + checksum +
// interner rebind, O(file size)) versus CorpusSnapshot::Build (label +
// clustered sort + all secondary indexes) at several corpus scales.
//
// This is the acceptance bench for the persistent-image subsystem: open
// time must track the file size, not the corpus's labeling cost — the gap
// to Build/* is the per-start cost the image amortizes away, and it widens
// with scale (sorting is O(n log n), the checksum scan is O(n)). The
// bytes/second counter on Open rows makes the O(file size) claim directly
// readable off the report.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "bench_common.h"
#include "gen/generator.h"
#include "storage/image.h"
#include "storage/snapshot.h"

namespace lpath {
namespace bench {
namespace {

/// Corpus (shared, built once per scale) and its saved image.
struct ScaleFixture {
  std::shared_ptr<const Corpus> corpus;
  std::string image_path;
  uint64_t image_bytes = 0;
};

const ScaleFixture& GetScale(int sentences) {
  static auto* scales = new std::map<int, ScaleFixture>();
  auto it = scales->find(sentences);
  if (it != scales->end()) return it->second;

  Result<Corpus> corpus = gen::GenerateWsj(sentences);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    std::abort();
  }
  ScaleFixture fx;
  fx.corpus = std::make_shared<const Corpus>(std::move(corpus).value());
  Result<SnapshotPtr> snapshot = CorpusSnapshot::Build(fx.corpus);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    std::abort();
  }
  fx.image_path =
      (std::filesystem::temp_directory_path() /
       ("lpathdb_bench_open_" + std::to_string(sentences) + ".img"))
          .string();
  Status saved = (*snapshot)->Save(fx.image_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    std::abort();
  }
  fx.image_bytes = std::filesystem::file_size(fx.image_path);
  return scales->emplace(sentences, std::move(fx)).first->second;
}

/// Label + sort + index from the in-memory corpus — what every Database
/// start used to pay.
void BM_BuildSnapshot(benchmark::State& st) {
  const ScaleFixture& fx = GetScale(static_cast<int>(st.range(0)));
  for (auto _ : st) {
    Result<SnapshotPtr> snap = CorpusSnapshot::Build(fx.corpus);
    if (!snap.ok()) {
      st.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize((*snap)->relation().row_count());
  }
}

/// mmap + validate + bind: the persistent-image start path.
void BM_OpenImage(benchmark::State& st) {
  const ScaleFixture& fx = GetScale(static_cast<int>(st.range(0)));
  uint64_t iters = 0;
  for (auto _ : st) {
    Result<SnapshotPtr> snap = CorpusSnapshot::Open(fx.image_path);
    if (!snap.ok()) {
      st.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize((*snap)->relation().row_count());
    ++iters;
  }
  st.SetBytesProcessed(static_cast<int64_t>(iters * fx.image_bytes));
  st.counters["image_bytes"] = static_cast<double>(fx.image_bytes);
}

/// Same open with only the header checksum verified (ImageVerify::
/// kHeaderOnly): skips the O(file-size) payload scan, leaving the
/// column decode as the remaining open-time cost. The gap to
/// BM_OpenImage is what the full-verify default buys its safety with.
void BM_OpenImageHeaderOnly(benchmark::State& st) {
  const ScaleFixture& fx = GetScale(static_cast<int>(st.range(0)));
  ImageOpenOptions options;
  options.verify = ImageVerify::kHeaderOnly;
  uint64_t iters = 0;
  for (auto _ : st) {
    Result<SnapshotPtr> snap = CorpusSnapshot::Open(fx.image_path, options);
    if (!snap.ok()) {
      st.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize((*snap)->relation().row_count());
    ++iters;
  }
  st.SetBytesProcessed(static_cast<int64_t>(iters * fx.image_bytes));
  st.counters["image_bytes"] = static_cast<double>(fx.image_bytes);
}

/// Open plus one query, to show the mapped columns are immediately hot.
void BM_OpenImageAndQuery(benchmark::State& st) {
  const ScaleFixture& fx = GetScale(static_cast<int>(st.range(0)));
  for (auto _ : st) {
    Result<SnapshotPtr> snap = CorpusSnapshot::Open(fx.image_path);
    if (!snap.ok()) {
      st.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    LPathEngine engine((*snap)->relation());
    Result<QueryResult> r = engine.Run("//VP[//NP]");
    if (!r.ok()) {
      st.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->count());
  }
}

}  // namespace
}  // namespace bench
}  // namespace lpath

BENCHMARK(lpath::bench::BM_BuildSnapshot)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(lpath::bench::BM_OpenImage)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(lpath::bench::BM_OpenImageHeaderOnly)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(lpath::bench::BM_OpenImageAndQuery)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
