// Plan-cache benchmark: what structural fingerprints buy the serving path
// when a hot working set arrives under many spellings (the realistic shape
// for generated queries: tools quote tags differently, reformat whitespace,
// or template the same structure into fresh text).
//
//   prepare/Cold       — seconds per *structure* for the full cold path on
//                        a fresh session: parse + compile + optimize +
//                        per-source sql::Prepare + memo setup.
//   prepare/Respelled  — seconds per *spelling* when the structure is
//                        already cached under different text: parse +
//                        compile + fingerprint probe, no sql::Prepare. The
//                        gap to Cold is the amortized prepare work; the
//                        `prepares` counter proves it is exactly zero.
//   hot_exec/PerText   — QPS of a hot mixed-spelling batch issued as
//                        individual Query() calls (every member is a plan
//                        cache hit; every member still executes).
//   hot_exec/Coalesced — the same batch through QueryBatch(): members that
//                        resolve to one cached plan coalesce into a single
//                        execution fanned out to all of them. The
//                        acceptance bar is Coalesced QPS >= PerText QPS
//                        (bench_diff --ratio Coalesced PerText).
//   memo/FirstPlan     — seconds for an EXISTS-heavy query on a fresh
//                        session (subquery answers derived from scratch).
//   memo/CrossPlan     — the same query after a *different* top-level plan
//                        (wildcard root, same EXISTS subtree) filled the
//                        session's subplan-memo registry: probes answered
//                        cross-plan (`subplan_memo_hits` counter).
//
// Machine-readable output: set LPATHDB_BENCH_JSON=<path> to dump the table
// as the BENCH_plan_cache.json trajectory (bench_diff.py diffs it against
// bench/baselines/, warn-only). CI runs the bench_plan_cache_report ctest
// entry.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/generator.h"
#include "service/query_service.h"
#include "sql/optimizer.h"
#include "storage/snapshot.h"

namespace lpath {
namespace bench {
namespace {

/// The hot structures. Each carries quotable tags (spelling variants) and
/// a predicate that keeps an EXISTS subtree after unnesting (OR / NOT), so
/// prepare cost and memo reuse are both visible.
constexpr const char* kStructures[] = {
    "//S//NP[//N or @lex='zzzunknown']",
    "//VP[not(//X)]//NP",
    "//S//VP[//V or //NP]",
};
constexpr int kNumStructures =
    static_cast<int>(sizeof(kStructures) / sizeof(kStructures[0]));
/// Spelling variants per structure in the hot batch (variant 0 = verbatim).
constexpr int kSpellingsPerStructure = 9;

/// The EXISTS-heavy pair for the memo rows: `kWide` computes the subtree's
/// answer for every node row, `kNarrow` re-probes a subset of them from a
/// different top-level plan.
constexpr const char* kWide = "//_[//N or @lex='zzzunknown']";
constexpr const char* kNarrow = "//NP[//N or @lex='zzzunknown']";

/// Corpus scale: a fraction of the fixture default, same arrangement as
/// bench_ingest (one WSJ snapshot, built once).
int PlanCacheSentences() { return std::max(200, BenchmarkSentences() / 4); }

/// Deterministic respelling `variant` of `q`: each maximal letter run that
/// starts uppercase (exactly the node tests — axes, keywords and @lex words
/// are lowercase) is left bare, single-quoted, or double-quoted by the
/// next base-3 digit of `variant`. Variant 0 is `q` itself; distinct
/// variants normalize to distinct cache texts but compile to one plan.
std::string Respell(const std::string& q, int variant) {
  std::string out;
  size_t i = 0;
  while (i < q.size()) {
    const unsigned char c = q[i];
    if (std::isupper(c)) {
      size_t j = i;
      while (j < q.size() && std::isalpha(static_cast<unsigned char>(q[j]))) {
        ++j;
      }
      const int style = variant % 3;
      variant /= 3;
      const char quote = style == 1 ? '\'' : '"';
      if (style != 0) out += quote;
      out.append(q, i, j - i);
      if (style != 0) out += quote;
      i = j;
    } else {
      out += q[i++];
    }
  }
  return out;
}

struct PlanCacheFixture {
  SnapshotPtr snap;
  service::QueryService* service = nullptr;
  std::vector<std::string> hot_batch;  ///< kSpellingsPerStructure × structure
};

PlanCacheFixture*& FixtureSlot() {
  static PlanCacheFixture* fixture = nullptr;
  return fixture;
}

PlanCacheFixture& GetPlanCacheFixture() {
  PlanCacheFixture*& slot = FixtureSlot();
  if (slot != nullptr) return *slot;
  auto* fx = new PlanCacheFixture();
  Result<Corpus> corpus = gen::GenerateWsj(PlanCacheSentences(), 2006);
  if (!corpus.ok()) {
    std::fprintf(stderr, "cannot generate corpus: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus).value());
  if (!snap.ok()) {
    std::fprintf(stderr, "cannot build snapshot: %s\n",
                 snap.status().ToString().c_str());
    std::exit(1);
  }
  fx->snap = std::move(snap).value();
  service::QueryServiceOptions opts;
  opts.threads = 2;
  fx->service = new service::QueryService(fx->snap, opts);
  for (const char* structure : kStructures) {
    for (int v = 0; v < kSpellingsPerStructure; ++v) {
      fx->hot_batch.push_back(Respell(structure, v));
    }
  }
  slot = fx;
  return *fx;
}

void FreeFixture() {
  PlanCacheFixture*& slot = FixtureSlot();
  if (slot == nullptr) return;
  delete slot->service;
  delete slot;
  slot = nullptr;
}

ReportTable& PlanCacheTable() {
  static ReportTable* table = new ReportTable(
      "Plan cache — fingerprint-shared preparation, batch coalescing, and "
      "cross-plan EXISTS memo reuse (WSJ, mixed-spelling hot set)");
  return *table;
}

/// Full cold pipeline, one fresh session per iteration: every structure is
/// parsed, compiled, optimized and prepared per source.
void BenchPrepareCold(benchmark::State& st) {
  PlanCacheFixture& fx = GetPlanCacheFixture();
  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    fx.service->UpdateSnapshot(fx.snap);  // fresh session, empty cache
    Timer timer;
    for (const char* structure : kStructures) {
      auto plan = fx.service->GetPlan(structure);
      if (!plan.ok()) {
        st.SkipWithError(plan.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(plan.value());
    }
    total += timer.ElapsedSeconds();
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters * kNumStructures));
  if (iters > 0) {
    PlanCacheTable().Record(
        "prepare", "Cold",
        Measurement{total / static_cast<double>(iters),
                    static_cast<size_t>(kNumStructures), true});
  }
}

/// Fresh spellings of already-cached structures: parse + compile +
/// fingerprint bind, zero sql::Prepare calls (counter-witnessed).
void BenchPrepareRespelled(benchmark::State& st) {
  PlanCacheFixture& fx = GetPlanCacheFixture();
  constexpr int kVariants = kSpellingsPerStructure - 1;  // skip verbatim
  double total = 0.0;
  uint64_t iters = 0;
  uint64_t prepares = 0;
  for (auto _ : st) {
    fx.service->UpdateSnapshot(fx.snap);
    for (const char* structure : kStructures) {  // warm structure, untimed
      auto plan = fx.service->GetPlan(structure);
      if (!plan.ok()) {
        st.SkipWithError(plan.status().ToString().c_str());
        return;
      }
    }
    const uint64_t before = sql::PrepareCallCount();
    Timer timer;
    for (const char* structure : kStructures) {
      for (int v = 1; v <= kVariants; ++v) {
        auto plan = fx.service->GetPlan(Respell(structure, v));
        if (!plan.ok()) {
          st.SkipWithError(plan.status().ToString().c_str());
          return;
        }
        benchmark::DoNotOptimize(plan.value());
      }
    }
    total += timer.ElapsedSeconds();
    prepares += sql::PrepareCallCount() - before;
    ++iters;
  }
  constexpr int kPerIter = kNumStructures * kVariants;
  st.SetItemsProcessed(static_cast<int64_t>(iters * kPerIter));
  st.counters["prepares"] = static_cast<double>(prepares);
  if (iters > 0) {
    PlanCacheTable().Record(
        "prepare", "Respelled",
        Measurement{total / static_cast<double>(iters),
                    static_cast<size_t>(kPerIter), true});
  }
}

/// Ensures every hot-batch member is cached (idempotent; first call does
/// the binds).
bool WarmHotBatch(benchmark::State& st) {
  PlanCacheFixture& fx = GetPlanCacheFixture();
  for (const std::string& q : fx.hot_batch) {
    auto plan = fx.service->GetPlan(q);
    if (!plan.ok()) {
      st.SkipWithError(plan.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

/// The hot batch as individual Query() calls: every member hits the cache
/// and every member executes.
void BenchHotPerText(benchmark::State& st) {
  PlanCacheFixture& fx = GetPlanCacheFixture();
  if (!WarmHotBatch(st)) return;
  double total = 0.0;
  uint64_t evaluated = 0;
  for (auto _ : st) {
    Timer timer;
    for (const std::string& q : fx.hot_batch) {
      Result<QueryResult> r = fx.service->Query(q);
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    total += timer.ElapsedSeconds();
    evaluated += fx.hot_batch.size();
  }
  st.SetItemsProcessed(static_cast<int64_t>(evaluated));
  if (evaluated > 0 && total > 0.0) {
    st.counters["qps"] = static_cast<double>(evaluated) / total;
    const double per_batch = total * static_cast<double>(fx.hot_batch.size()) /
                             static_cast<double>(evaluated);
    PlanCacheTable().Record("hot_exec", "PerText",
                            Measurement{per_batch, fx.hot_batch.size(), true});
  }
}

/// The same batch through QueryBatch(): same-structure members coalesce to
/// one execution each.
void BenchHotCoalesced(benchmark::State& st) {
  PlanCacheFixture& fx = GetPlanCacheFixture();
  if (!WarmHotBatch(st)) return;
  double total = 0.0;
  uint64_t evaluated = 0;
  for (auto _ : st) {
    Timer timer;
    std::vector<Result<QueryResult>> results =
        fx.service->QueryBatch(fx.hot_batch);
    total += timer.ElapsedSeconds();
    for (const Result<QueryResult>& r : results) {
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    evaluated += fx.hot_batch.size();
  }
  st.SetItemsProcessed(static_cast<int64_t>(evaluated));
  if (evaluated > 0 && total > 0.0) {
    st.counters["qps"] = static_cast<double>(evaluated) / total;
    const double per_batch = total * static_cast<double>(fx.hot_batch.size()) /
                             static_cast<double>(evaluated);
    PlanCacheTable().Record("hot_exec", "Coalesced",
                            Measurement{per_batch, fx.hot_batch.size(), true});
  }
}

/// EXISTS-heavy query on a fresh session: all subquery answers derived.
void BenchMemoFirstPlan(benchmark::State& st) {
  PlanCacheFixture& fx = GetPlanCacheFixture();
  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    fx.service->UpdateSnapshot(fx.snap);
    Timer timer;
    Result<QueryResult> r = fx.service->Query(kNarrow);
    total += timer.ElapsedSeconds();
    if (!r.ok()) {
      st.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->count());
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters));
  if (iters > 0) {
    PlanCacheTable().Record(
        "memo", "FirstPlan",
        Measurement{total / static_cast<double>(iters), 1, true});
  }
}

/// The same query after a different plan filled the registry memo: probes
/// answered cross-plan.
void BenchMemoCrossPlan(benchmark::State& st) {
  PlanCacheFixture& fx = GetPlanCacheFixture();
  double total = 0.0;
  uint64_t iters = 0;
  uint64_t memo_hits = 0;
  for (auto _ : st) {
    fx.service->UpdateSnapshot(fx.snap);
    Result<QueryResult> warm = fx.service->Query(kWide);  // fills the memo
    if (!warm.ok()) {
      st.SkipWithError(warm.status().ToString().c_str());
      return;
    }
    const uint64_t before = fx.service->Stats().exec.subplan_memo_hits;
    Timer timer;
    Result<QueryResult> r = fx.service->Query(kNarrow);
    total += timer.ElapsedSeconds();
    if (!r.ok()) {
      st.SkipWithError(r.status().ToString().c_str());
      return;
    }
    memo_hits += fx.service->Stats().exec.subplan_memo_hits - before;
    benchmark::DoNotOptimize(r->count());
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters));
  st.counters["subplan_memo_hits"] = static_cast<double>(memo_hits);
  if (iters > 0) {
    PlanCacheTable().Record(
        "memo", "CrossPlan",
        Measurement{total / static_cast<double>(iters), 1, true});
  }
}

void RegisterAll() {
  struct Entry {
    const char* name;
    void (*fn)(benchmark::State&);
  };
  for (const Entry& e : {Entry{"prepare/Cold", BenchPrepareCold},
                         Entry{"prepare/Respelled", BenchPrepareRespelled},
                         Entry{"hot_exec/PerText", BenchHotPerText},
                         Entry{"hot_exec/Coalesced", BenchHotCoalesced},
                         Entry{"memo/FirstPlan", BenchMemoFirstPlan},
                         Entry{"memo/CrossPlan", BenchMemoCrossPlan}}) {
    benchmark::RegisterBenchmark(e.name, e.fn)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintTables() {
  printf("%s", PlanCacheTable()
                   .Render({"Cold", "Respelled", "PerText", "Coalesced",
                            "FirstPlan", "CrossPlan"})
                   .c_str());
  printf("\n(prepare: per pass — Cold preps %d structures, Respelled binds "
         "%d fresh spellings; hot_exec: per %zu-member mixed-spelling batch; "
         "memo: per query; scale: %d sentences, LPATHDB_SENTENCES "
         "overrides)\n",
         kNumStructures, kNumStructures * (kSpellingsPerStructure - 1),
         GetPlanCacheFixture().hot_batch.size(), PlanCacheSentences());
}

/// Writes the table as the BENCH_plan_cache.json trajectory point when
/// LPATHDB_BENCH_JSON names a path.
void MaybeWriteJson() {
  const char* path = std::getenv("LPATHDB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::map<std::string, std::string> extra = RunMetadataJson();
  extra["benchmark"] = "\"plan_cache\"";
  extra["unit"] = "\"seconds per operation (see column docs)\"";
  extra["sentences"] = std::to_string(PlanCacheSentences());
  extra["structures"] = std::to_string(kNumStructures);
  extra["spellings_per_structure"] = std::to_string(kSpellingsPerStructure);
  const std::string json = PlanCacheTable().RenderJson(extra);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fputs(json.c_str(), f);
  std::fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::MaybeWriteJson();
  lpath::bench::FreeFixture();
  return 0;
}
