// Multi-corpus database benchmark: the serving shapes the db:: layer adds
// on top of one QueryService.
//
//   Routed/qps            — the 23-query suite round-robined across every
//                           attached corpus through Database::Query; QPS of
//                           the name → snapshot → plan-cache routing path.
//   Swap/publish          — latency of Database::Swap publishing a prebuilt
//                           snapshot while loader threads keep querying the
//                           same corpus (readers never block: swap time is
//                           one session build + one atomic store).
//   Swap/reload           — latency of Database::Reload (index rebuild over
//                           the same corpus + publish) under the same load.
//
// Expected shape: routed QPS tracks the single-corpus batch path (routing
// adds a map lookup per query); publish stays in the tens of microseconds
// regardless of corpus size; reload scales with relation build time.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "db/database.h"
#include "gen/generator.h"

namespace lpath {
namespace bench {
namespace {

/// Corpus scale: a fraction of the fixture default keeps the swap loops
/// (which rebuild relations) comfortably inside the smoke budget.
int MulticorpusSentences() {
  return std::max(100, BenchmarkSentences() / 8);
}

const std::vector<std::string>& SuiteQueries() {
  static const std::vector<std::string>* queries = [] {
    auto* q = new std::vector<std::string>();
    for (const BenchmarkQuery& bq : The23Queries()) q->push_back(bq.lpath);
    return q;
  }();
  return *queries;
}

/// One database holding both profile corpora; leaked-pointer singleton so
/// no static destructor runs behind the sanitizers' backs — main() frees.
db::Database* TheDatabase() {
  static db::Database* database = [] {
    db::DatabaseOptions opts;
    opts.service.threads = 2;
    auto* d = new db::Database(opts);
    const int n = MulticorpusSentences();
    Result<Corpus> wsj = gen::GenerateWsj(n);
    Result<Corpus> swb = gen::GenerateSwb(n);
    if (!wsj.ok() || !swb.ok()) return d;  // benches will report the error
    (void)d->OpenCorpus("wsj", std::move(wsj).value());
    (void)d->OpenCorpus("swb", std::move(swb).value());
    return d;
  }();
  return database;
}

void FreeDatabase() { delete TheDatabase(); }

ReportTable& MulticorpusTable() {
  static ReportTable* table = new ReportTable(
      "Multi-corpus database — routed throughput and hot-swap latency");
  return *table;
}

/// The suite round-robined over every corpus; QPS counts routed queries.
void BenchRouted(benchmark::State& st) {
  db::Database* database = TheDatabase();
  const std::vector<std::string>& queries = SuiteQueries();
  const std::vector<std::string> names = database->CorpusNames();
  if (names.empty()) {
    st.SkipWithError("no corpora attached");
    return;
  }

  double total = 0.0;
  uint64_t evaluated = 0;
  for (auto _ : st) {
    Timer timer;
    for (const std::string& name : names) {
      for (const std::string& q : queries) {
        Result<QueryResult> r = database->Query(name, q);
        if (!r.ok()) {
          st.SkipWithError(r.status().ToString().c_str());
          return;
        }
      }
    }
    total += timer.ElapsedSeconds();
    evaluated += names.size() * queries.size();
  }
  st.SetItemsProcessed(static_cast<int64_t>(evaluated));
  if (evaluated > 0 && total > 0.0) {
    st.counters["qps"] = static_cast<double>(evaluated) / total;
    MulticorpusTable().Record(
        "Routed", "per-query",
        Measurement{total / static_cast<double>(evaluated), evaluated, true});
  }
}

/// Measures one swap primitive per iteration while loader threads hammer
/// queries against the corpus being republished.
template <typename SwapFn>
void BenchSwapUnderLoad(benchmark::State& st, const char* row, SwapFn swap_fn) {
  db::Database* database = TheDatabase();
  if (!database->Has("wsj")) {
    st.SkipWithError("no corpora attached");
    return;
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> load_queries{0};
  std::atomic<int> load_errors{0};
  constexpr int kLoaders = 2;
  Timer load_timer;  // spans the loaders' whole lifetime, not just swaps
  std::vector<std::thread> loaders;
  loaders.reserve(kLoaders);
  for (int i = 0; i < kLoaders; ++i) {
    loaders.emplace_back([database, i, &stop, &load_queries, &load_errors] {
      const std::vector<std::string>& queries = SuiteQueries();
      size_t qi = static_cast<size_t>(i);
      while (!stop.load(std::memory_order_relaxed)) {
        Result<QueryResult> r =
            database->Query("wsj", queries[qi++ % queries.size()]);
        if (!r.ok()) load_errors.fetch_add(1, std::memory_order_relaxed);
        load_queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  double total = 0.0;
  uint64_t swaps = 0;
  for (auto _ : st) {
    Timer timer;
    const Status s = swap_fn(database);
    total += timer.ElapsedSeconds();
    if (!s.ok()) {
      stop.store(true);
      for (std::thread& t : loaders) t.join();
      st.SkipWithError(s.ToString().c_str());
      return;
    }
    ++swaps;
  }
  stop.store(true);
  for (std::thread& t : loaders) t.join();
  const double load_seconds = load_timer.ElapsedSeconds();
  if (load_errors.load() != 0) {
    st.SkipWithError("queries failed during swap");
    return;
  }
  st.SetItemsProcessed(static_cast<int64_t>(swaps));
  st.counters["load_qps"] =
      load_seconds > 0.0
          ? static_cast<double>(load_queries.load()) / load_seconds
          : 0.0;
  if (swaps > 0) {
    MulticorpusTable().Record(
        row, "per-query",
        Measurement{total / static_cast<double>(swaps), swaps, true});
  }
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Routed/qps", BenchRouted)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "Swap/publish",
      [](benchmark::State& st) {
        // Two prebuilt snapshots of the same corpus alternate, so each
        // iteration times exactly the publish (session build + store).
        db::Database* database = TheDatabase();
        SnapshotPtr a = database->snapshot("wsj");
        if (a == nullptr) {
          st.SkipWithError("no corpora attached");
          return;
        }
        Result<SnapshotPtr> b = a->Rebuild();
        if (!b.ok()) {
          st.SkipWithError(b.status().ToString().c_str());
          return;
        }
        bool use_a = false;
        BenchSwapUnderLoad(st, "Swap(publish)",
                           [&](db::Database* d) {
                             use_a = !use_a;
                             return d->Swap("wsj", use_a ? a : b.value());
                           });
      })
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "Swap/reload",
      [](benchmark::State& st) {
        BenchSwapUnderLoad(st, "Swap(reload)",
                           [](db::Database* d) { return d->Reload("wsj"); });
      })
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
}

void PrintTables() {
  printf("%s", MulticorpusTable().Render({"per-query"}).c_str());
  printf("\n(Routed: mean per routed query over %zu corpora x 23 queries; "
         "Swap rows: mean per swap under %d loader threads; scale: %d "
         "sentences/corpus)\n",
         TheDatabase()->CorpusNames().size(), 2, MulticorpusSentences());
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::FreeDatabase();
  return 0;
}
