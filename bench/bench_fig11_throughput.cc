// "Figure 11" (ours, not the paper's): query throughput of the
// QueryService serving layer versus thread count, on the WSJ and SWB
// profile corpora.
//
// Two shapes are measured over the 23-query suite:
//   Batch/<dataset>/threads:N — the serving path: the suite submitted as a
//     batch, queries spread across N pool workers, plans from the LRU
//     cache. Reported as items_per_second (QPS).
//   Sharded/<dataset>/threads:N — single-query latency: each query's
//     execution fanned out over N shard workers.
// Expected shape: batch QPS scales near-linearly with threads until the
// corpus's tree count or memory bandwidth binds; sharded latency gains are
// query-dependent (long scans split well, tiny lookups are overhead-bound).
// The printed table reports the speedup over threads:1.

#include "bench_common.h"
#include "service/query_service.h"

namespace lpath {
namespace bench {
namespace {

const std::vector<std::string>& SuiteQueries() {
  static const std::vector<std::string>* queries = [] {
    auto* q = new std::vector<std::string>();
    for (const BenchmarkQuery& bq : The23Queries()) q->push_back(bq.lpath);
    return q;
  }();
  return *queries;
}

/// Services keyed by (dataset, threads), shared by the Batch and Sharded
/// benchmarks. A leaked-pointer map (so no static destructor drops the
/// entries behind LeakSanitizer's back); main() frees the services, which
/// also joins their pools.
std::map<std::pair<Dataset, int>, service::QueryService*>& ServiceRegistry() {
  static auto* services =
      new std::map<std::pair<Dataset, int>, service::QueryService*>();
  return *services;
}

service::QueryService* GetService(Dataset dataset, int threads) {
  service::QueryService*& slot = ServiceRegistry()[{dataset, threads}];
  if (slot == nullptr) {
    const EngineSet& fx = GetFixture(dataset);
    service::QueryServiceOptions opts;
    opts.threads = threads;
    // Fixed fan-out: this figure measures sharding against thread count, so
    // the adaptive serial heuristic is disabled.
    opts.adaptive_serial_rows = 0;
    slot = new service::QueryService(fx.lpath_snapshot, opts);
    // Warm the plan cache so the timed loop measures the serve path, not
    // the one-off parse/compile/optimize of each query.
    for (const std::string& q : SuiteQueries()) (void)slot->GetPlan(q);
  }
  return slot;
}

void FreeServices() {
  for (auto& [key, service] : ServiceRegistry()) delete service;
  ServiceRegistry().clear();
}

ReportTable& Fig11Table() {
  static ReportTable* table = new ReportTable(
      "Figure 11 — QueryService throughput vs. thread count (23-query "
      "suite)");
  return *table;
}

std::string ThreadColumn(int threads) {
  std::string c = "T";
  c += std::to_string(threads);
  return c;
}

/// The full suite submitted as one batch; QPS = queries / wall time.
void BenchBatch(benchmark::State& st, Dataset dataset, int threads) {
  service::QueryService* service = GetService(dataset, threads);
  const std::vector<std::string>& queries = SuiteQueries();

  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    Timer timer;
    std::vector<Result<QueryResult>> results = service->QueryBatch(queries);
    total += timer.ElapsedSeconds();
    for (const Result<QueryResult>& r : results) {
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters * queries.size()));
  if (iters > 0) {
    const double per_batch = total / static_cast<double>(iters);
    st.counters["qps"] =
        static_cast<double>(queries.size()) / per_batch;
    std::string row = "Batch/";
    row += DatasetName(dataset);
    Fig11Table().Record(row, ThreadColumn(threads),
                        Measurement{per_batch, queries.size(), true});
  }
}

/// One pass over the suite, each query shard-parallel; mean seconds/query.
void BenchSharded(benchmark::State& st, Dataset dataset, int threads) {
  service::QueryService* service = GetService(dataset, threads);
  const std::vector<std::string>& queries = SuiteQueries();

  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    Timer timer;
    for (const std::string& q : queries) {
      Result<QueryResult> r = service->Query(q);
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    total += timer.ElapsedSeconds();
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters * queries.size()));
  if (iters > 0) {
    const double per_suite = total / static_cast<double>(iters);
    std::string row = "Sharded/";
    row += DatasetName(dataset);
    Fig11Table().Record(row, ThreadColumn(threads),
                        Measurement{per_suite, queries.size(), true});
  }
}

void RegisterAll() {
  for (Dataset dataset : {Dataset::kWsj, Dataset::kSwb}) {
    for (int threads : {1, 2, 4, 8}) {
      std::string batch_name = "Batch/";
      batch_name += DatasetName(dataset);
      batch_name += "/threads:";
      batch_name += std::to_string(threads);
      benchmark::RegisterBenchmark(
          batch_name.c_str(),
          [dataset, threads](benchmark::State& st) {
            BenchBatch(st, dataset, threads);
          })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
      std::string shard_name = "Sharded/";
      shard_name += DatasetName(dataset);
      shard_name += "/threads:";
      shard_name += std::to_string(threads);
      benchmark::RegisterBenchmark(
          shard_name.c_str(),
          [dataset, threads](benchmark::State& st) {
            BenchSharded(st, dataset, threads);
          })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintTables() {
  printf("%s", Fig11Table().Render({"T1", "T2", "T4", "T8"}).c_str());
  printf("\n(times are per 23-query suite pass; speedup = T1 / TN; scale: "
         "%d sentences, LPATHDB_SENTENCES overrides)\n",
         BenchmarkSentences());
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::FreeServices();
  return 0;
}
