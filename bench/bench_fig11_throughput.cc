// "Figure 11" (ours, not the paper's): query throughput of the
// QueryService serving layer versus thread count, on the WSJ and SWB
// profile corpora.
//
// Three shapes are measured over the 23-query suite:
//   Batch/<dataset>/threads:N — the serving path: the suite submitted as a
//     batch, queries spread across N pool workers, plans from the LRU
//     cache. Reported as items_per_second (QPS).
//   Morsel/<dataset>/threads:N — single-query latency: each query's
//     execution carved into row-balanced morsels pulled by N workers from
//     the shared claim cursor.
//   Serial/<dataset>/threads:N — the serial baseline (fan-out forced to
//     one); flat in N by construction.
// Expected shape: batch QPS scales near-linearly with threads until the
// corpus's tree count or memory bandwidth binds; morsel latency gains are
// query-dependent (long scans split well, tiny lookups are overhead-bound).
// The printed table reports the speedup over threads:1.
//
// Machine-readable output (the BENCH_*.json trajectory): set
// LPATHDB_BENCH_JSON=<path> to write the table as JSON after the run; the
// bench also honours Google Benchmark's own --benchmark_out=<path>
// (--benchmark_out_format=json) for the raw per-benchmark dump. CI runs
// both through the bench_fig11_report ctest entry and uploads the files.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "service/query_service.h"

namespace lpath {
namespace bench {
namespace {

const std::vector<std::string>& SuiteQueries() {
  static const std::vector<std::string>* queries = [] {
    auto* q = new std::vector<std::string>();
    for (const BenchmarkQuery& bq : The23Queries()) q->push_back(bq.lpath);
    return q;
  }();
  return *queries;
}

/// Whether a service runs the full morsel scheduler or the forced-serial
/// baseline — the serial/parallel axis of the report.
enum class Mode { kSerial, kMorsel };

/// Services keyed by (dataset, threads, mode), shared by the Batch and
/// Morsel benchmarks. A leaked-pointer map (so no static destructor drops
/// the entries behind LeakSanitizer's back); main() frees the services,
/// which also joins their pools.
std::map<std::tuple<Dataset, int, Mode>, service::QueryService*>&
ServiceRegistry() {
  static auto* services =
      new std::map<std::tuple<Dataset, int, Mode>, service::QueryService*>();
  return *services;
}

service::QueryService* GetService(Dataset dataset, int threads, Mode mode) {
  service::QueryService*& slot = ServiceRegistry()[{dataset, threads, mode}];
  if (slot == nullptr) {
    const EngineSet& fx = GetFixture(dataset);
    service::QueryServiceOptions opts;
    opts.threads = threads;
    // Fixed fan-out: this figure measures morsel scheduling against thread
    // count, so the adaptive serial heuristic is disabled; the serial
    // baseline instead caps the per-query fan-out at one worker.
    opts.adaptive_serial_rows = 0;
    if (mode == Mode::kSerial) opts.shards_per_query = 1;
    slot = new service::QueryService(fx.lpath_snapshot, opts);
    // Warm the plan cache so the timed loop measures the serve path, not
    // the one-off parse/compile/optimize of each query.
    for (const std::string& q : SuiteQueries()) (void)slot->GetPlan(q);
  }
  return slot;
}

void FreeServices() {
  for (auto& [key, service] : ServiceRegistry()) delete service;
  ServiceRegistry().clear();
}

ReportTable& Fig11Table() {
  static ReportTable* table = new ReportTable(
      "Figure 11 — QueryService throughput vs. thread count (23-query "
      "suite)");
  return *table;
}

std::string ThreadColumn(int threads) {
  std::string c = "T";
  c += std::to_string(threads);
  return c;
}

std::string RowName(const char* shape, Dataset dataset) {
  std::string row = shape;
  row += "/";
  row += DatasetName(dataset);
  return row;
}

/// The full suite submitted as one batch; QPS = queries / wall time.
void BenchBatch(benchmark::State& st, Dataset dataset, int threads) {
  service::QueryService* service = GetService(dataset, threads, Mode::kMorsel);
  const std::vector<std::string>& queries = SuiteQueries();

  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    Timer timer;
    std::vector<Result<QueryResult>> results = service->QueryBatch(queries);
    total += timer.ElapsedSeconds();
    for (const Result<QueryResult>& r : results) {
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters * queries.size()));
  if (iters > 0) {
    const double per_batch = total / static_cast<double>(iters);
    st.counters["qps"] =
        static_cast<double>(queries.size()) / per_batch;
    Fig11Table().Record(RowName("Batch", dataset), ThreadColumn(threads),
                        Measurement{per_batch, queries.size(), true});
  }
}

/// One pass over the suite, each query morsel-parallel (or forced serial);
/// mean seconds per suite pass.
void BenchPerQuery(benchmark::State& st, Dataset dataset, int threads,
                   Mode mode) {
  service::QueryService* service = GetService(dataset, threads, mode);
  const std::vector<std::string>& queries = SuiteQueries();
  // Stats are service-lifetime-cumulative and the service is shared with
  // the Batch benchmark (whose queries all run serially); report this
  // loop's delta or the fan-out counters dilute toward 1.
  const service::ServiceStats before = service->Stats();

  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    Timer timer;
    for (const std::string& q : queries) {
      Result<QueryResult> r = service->Query(q);
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    total += timer.ElapsedSeconds();
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters * queries.size()));
  if (iters > 0) {
    const double per_suite = total / static_cast<double>(iters);
    st.counters["qps"] =
        static_cast<double>(queries.size()) / per_suite;
    const service::ServiceStats stats = service->Stats();
    const uint64_t d_queries = stats.queries - before.queries;
    const uint64_t d_morsels = stats.exec.morsels - before.exec.morsels;
    st.counters["morsels_per_query"] =
        d_queries > 0 ? static_cast<double>(d_morsels) /
                            static_cast<double>(d_queries)
                      : 0.0;
    st.counters["steals"] = static_cast<double>(stats.exec.steal_count -
                                                before.exec.steal_count);
    Fig11Table().Record(
        RowName(mode == Mode::kSerial ? "Serial" : "Morsel", dataset),
        ThreadColumn(threads), Measurement{per_suite, queries.size(), true});
  }
}

void RegisterAll() {
  for (Dataset dataset : {Dataset::kWsj, Dataset::kSwb}) {
    for (int threads : {1, 2, 4, 8}) {
      struct Shape {
        const char* prefix;
        Mode mode;
      };
      std::string batch_name = RowName("Batch", dataset);
      batch_name += "/threads:";
      batch_name += std::to_string(threads);
      benchmark::RegisterBenchmark(
          batch_name.c_str(),
          [dataset, threads](benchmark::State& st) {
            BenchBatch(st, dataset, threads);
          })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
      for (const Shape& shape :
           {Shape{"Morsel", Mode::kMorsel}, Shape{"Serial", Mode::kSerial}}) {
        std::string name = RowName(shape.prefix, dataset);
        name += "/threads:";
        name += std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [dataset, threads, mode = shape.mode](benchmark::State& st) {
              BenchPerQuery(st, dataset, threads, mode);
            })
            ->UseRealTime()
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void PrintTables() {
  printf("%s", Fig11Table().Render({"T1", "T2", "T4", "T8"}).c_str());
  printf("\n(times are per 23-query suite pass; speedup = T1 / TN; scale: "
         "%d sentences, LPATHDB_SENTENCES overrides)\n",
         BenchmarkSentences());
}

/// Writes the table as the BENCH_fig11.json trajectory point when
/// LPATHDB_BENCH_JSON names a path.
void MaybeWriteJson() {
  const char* path = std::getenv("LPATHDB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  // Stamped with git SHA / compiler / nproc so uploaded trajectories are
  // diffable across runs and runners (bench/bench_diff.py reads these).
  std::map<std::string, std::string> extra = RunMetadataJson();
  extra["benchmark"] = "\"fig11\"";
  extra["unit"] = "\"seconds per 23-query suite pass\"";
  extra["sentences"] = std::to_string(BenchmarkSentences());
  extra["threads"] = "[1, 2, 4, 8]";
  const std::string json = Fig11Table().RenderJson(extra);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fputs(json.c_str(), f);
  std::fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::MaybeWriteJson();
  lpath::bench::FreeServices();
  return 0;
}
