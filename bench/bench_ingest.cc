// Live-corpus ingestion benchmark: the snapshot-chain shapes behind
// Database::Ingest, measured at three delta sizes over the WSJ profile
// corpus.
//
//   Append  — mean seconds to Append() one 32-tree batch onto a chain
//             whose delta already holds D trees. Only the delta is ever
//             relabeled, so the cost is O(D + 32) regardless of base size;
//             the trees_per_second counter is the append throughput.
//   Query   — mean seconds per 23-query suite pass routed through
//             db::Database while the corpus carries a live delta of D
//             trees: the two-source (base + delta) execution path, merged
//             at the DISTINCT stage.
//   Compact — mean seconds to fold a delta of D trees back into one
//             base-only snapshot (the background compactor's unit of
//             work; in-memory base, so no image rewrite is timed here).
//   live    — Query only: suite QPS while one ingest thread continuously
//             appends 8-tree batches into the same corpus, the background
//             compactor folds past-threshold deltas, and a periodic Swap
//             resets the corpus to its base so the working set stays
//             bounded. Noisier than the static rows by construction.
//
// Expected shape: Append flat-ish in base size but linear in D (the whole
// delta is relabeled per append); Query within a small factor of the
// delta-free path at small D; Compact linear in base+delta merge size;
// live QPS between the delta:16 and delta:1024 Query points.
//
// Machine-readable output: set LPATHDB_BENCH_JSON=<path> to dump the table
// as the BENCH_ingest.json trajectory (bench_diff.py diffs it, warn-only);
// --benchmark_out gives the raw dump. CI runs both through the
// bench_ingest_report ctest entry.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "db/database.h"
#include "gen/generator.h"
#include "storage/snapshot.h"

namespace lpath {
namespace bench {
namespace {

/// Delta sizes (trees) the static rows measure.
constexpr int kDeltaSizes[] = {16, 128, 1024};
/// Trees per timed Append in the Append column.
constexpr int kAppendBatch = 32;

/// Base-corpus scale: a fraction of the fixture default keeps the fixture
/// builds (one snapshot + one database per delta size) inside the smoke
/// budget (same arrangement as bench_multicorpus).
int IngestSentences() { return std::max(200, BenchmarkSentences() / 4); }

const std::vector<std::string>& SuiteQueries() {
  static const std::vector<std::string>* queries = [] {
    auto* q = new std::vector<std::string>();
    for (const BenchmarkQuery& bq : The23Queries()) q->push_back(bq.lpath);
    return q;
  }();
  return *queries;
}

/// Id-faithful copy: Database::Ingest consumes its corpus, so repeated
/// ingests of the same batch clone it — seeding the clone's interner from
/// the source keeps symbol ids (and thus relation bytes) identical.
Corpus CloneCorpus(const Corpus& src) {
  Corpus copy;
  copy.ResetInterner(src.interner().Clone());
  copy.AppendFrom(src);
  return copy;
}

Corpus MustGenerateWsj(int sentences, uint64_t seed) {
  Result<Corpus> corpus = gen::GenerateWsj(sentences, seed);
  if (!corpus.ok()) {
    std::fprintf(stderr, "cannot generate corpus: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).value();
}

/// Everything the static rows share, built once per process. Leaked-pointer
/// cache (no static destructor ordering games under LeakSanitizer);
/// main() frees it.
struct IngestFixture {
  SnapshotPtr base;                       ///< delta-free base snapshot
  std::map<int, SnapshotPtr> chains;      ///< delta size → base+delta chain
  std::map<int, Corpus> deltas;           ///< delta size → the delta trees
  Corpus append_batch;                    ///< the 32-tree Append payload
  Corpus live_batch;                      ///< 8-tree live-ingest payload
  std::map<int, db::Database*> databases; ///< delta size → db with live delta
};

IngestFixture*& FixtureSlot() {
  static IngestFixture* fixture = nullptr;
  return fixture;
}

IngestFixture& GetIngestFixture() {
  IngestFixture*& slot = FixtureSlot();
  if (slot != nullptr) return *slot;
  auto* fx = new IngestFixture();

  Corpus base_corpus = MustGenerateWsj(IngestSentences(), 2006);
  Result<SnapshotPtr> base = CorpusSnapshot::Build(std::move(base_corpus), {});
  if (!base.ok()) {
    std::fprintf(stderr, "cannot build base: %s\n",
                 base.status().ToString().c_str());
    std::exit(1);
  }
  fx->base = std::move(base).value();
  fx->append_batch = MustGenerateWsj(kAppendBatch, 4242);
  fx->live_batch = MustGenerateWsj(8, 4243);

  for (int delta : kDeltaSizes) {
    fx->deltas.emplace(delta,
                       MustGenerateWsj(delta, 7000 + static_cast<uint64_t>(
                                                        delta)));
    Result<SnapshotPtr> chain = fx->base->Append(fx->deltas.at(delta));
    if (!chain.ok()) {
      std::fprintf(stderr, "cannot append delta: %s\n",
                   chain.status().ToString().c_str());
      std::exit(1);
    }
    fx->chains.emplace(delta, std::move(chain).value());
  }
  slot = fx;
  return *fx;
}

/// Database with a live delta of `delta` trees, lazily built. Auto
/// compaction is disabled so the delta stays exactly `delta` trees for the
/// whole timed loop. `delta == 0` is the live-ingest database: delta-free
/// at start, compactor enabled.
db::Database* GetDatabase(int delta) {
  IngestFixture& fx = GetIngestFixture();
  db::Database*& slot = fx.databases[delta];
  if (slot == nullptr) {
    db::DatabaseOptions opts;
    opts.service.threads = 2;
    opts.compact_delta_trees = delta == 0 ? 64 : 0;
    auto* d = new db::Database(opts);
    Status s = d->OpenCorpus("wsj", CloneCorpus(fx.base->corpus()));
    if (s.ok() && delta > 0) {
      s = d->Ingest("wsj", CloneCorpus(fx.deltas.at(delta)));
    }
    if (!s.ok()) {
      std::fprintf(stderr, "cannot set up database: %s\n",
                   s.ToString().c_str());
      std::exit(1);
    }
    slot = d;
  }
  return slot;
}

void FreeFixture() {
  IngestFixture*& slot = FixtureSlot();
  if (slot == nullptr) return;
  for (auto& [delta, database] : slot->databases) delete database;
  delete slot;
  slot = nullptr;
}

ReportTable& IngestTable() {
  static ReportTable* table = new ReportTable(
      "Live corpora — append throughput, two-source query latency, and "
      "compaction cost vs. delta size (WSJ)");
  return *table;
}

std::string DeltaRow(int delta) {
  std::string row = "delta:";
  row += std::to_string(delta);
  return row;
}

/// Append of a 32-tree batch onto a chain carrying a D-tree delta.
void BenchAppend(benchmark::State& st, int delta) {
  IngestFixture& fx = GetIngestFixture();
  const SnapshotPtr& chain = fx.chains.at(delta);

  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    Timer timer;
    Result<SnapshotPtr> appended = chain->Append(fx.append_batch);
    total += timer.ElapsedSeconds();
    if (!appended.ok()) {
      st.SkipWithError(appended.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*appended);
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters * kAppendBatch));
  if (iters > 0) {
    const double per_append = total / static_cast<double>(iters);
    st.counters["trees_per_second"] =
        per_append > 0.0 ? kAppendBatch / per_append : 0.0;
    IngestTable().Record(DeltaRow(delta), "Append",
                         Measurement{per_append, kAppendBatch, true});
  }
}

/// The 23-query suite through the routed db:: path with a D-tree delta
/// live — every query runs the two-source (base + delta) executor.
void BenchQuery(benchmark::State& st, int delta) {
  db::Database* database = GetDatabase(delta);
  const std::vector<std::string>& queries = SuiteQueries();

  double total = 0.0;
  uint64_t evaluated = 0;
  for (auto _ : st) {
    Timer timer;
    for (const std::string& q : queries) {
      Result<QueryResult> r = database->Query("wsj", q);
      if (!r.ok()) {
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    total += timer.ElapsedSeconds();
    evaluated += queries.size();
  }
  st.SetItemsProcessed(static_cast<int64_t>(evaluated));
  if (evaluated > 0 && total > 0.0) {
    st.counters["qps"] = static_cast<double>(evaluated) / total;
    // Per-suite seconds with the suite size as the count (the fig11
    // convention): bench_diff's results/seconds then equals true QPS and
    // never depends on the iteration count.
    const double per_suite =
        total * static_cast<double>(queries.size()) /
        static_cast<double>(evaluated);
    IngestTable().Record(DeltaRow(delta), "Query",
                         Measurement{per_suite, queries.size(), true});
  }
}

/// Folding a D-tree delta back into a base-only snapshot (built base, so
/// the merge itself is timed, not an image rewrite).
void BenchCompact(benchmark::State& st, int delta) {
  IngestFixture& fx = GetIngestFixture();
  const SnapshotPtr& chain = fx.chains.at(delta);

  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    Timer timer;
    Result<SnapshotPtr> compacted = chain->Compact();
    total += timer.ElapsedSeconds();
    if (!compacted.ok()) {
      st.SkipWithError(compacted.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*compacted);
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters));
  if (iters > 0) {
    IngestTable().Record(
        DeltaRow(delta), "Compact",
        Measurement{total / static_cast<double>(iters),
                    static_cast<size_t>(delta), true});
  }
}

/// Routed Database::Ingest of the 32-tree batch with and without a
/// write-ahead log: the price of durability is one serialized batch
/// write plus a commit fsync per ingest (DatabaseOptions::wal_dir). The
/// corpus is swapped back to its base after every timed ingest so each
/// iteration pays O(batch), never O(accumulated delta).
void BenchDurableIngest(benchmark::State& st, bool durable) {
  namespace fs = std::filesystem;
  IngestFixture& fx = GetIngestFixture();
  db::DatabaseOptions opts;
  opts.service.threads = 2;
  opts.compact_delta_trees = 0;
  std::string wal_dir;
  if (durable) {
    wal_dir = (fs::temp_directory_path() /
               ("lpathdb_bench_ingest_wal_" + std::to_string(::getpid())))
                  .string();
    fs::remove_all(wal_dir);
    opts.wal_dir = wal_dir;
  }
  db::Database database(opts);
  Status setup = database.OpenCorpus("wsj", CloneCorpus(fx.base->corpus()));
  if (!setup.ok()) {
    st.SkipWithError(setup.ToString().c_str());
    return;
  }
  const SnapshotPtr base = database.snapshot("wsj");

  double total = 0.0;
  uint64_t iters = 0;
  for (auto _ : st) {
    Corpus batch = CloneCorpus(fx.append_batch);  // untimed
    Timer timer;
    Status s = database.Ingest("wsj", std::move(batch));
    total += timer.ElapsedSeconds();
    if (!s.ok()) {
      st.SkipWithError(s.ToString().c_str());
      if (durable) fs::remove_all(wal_dir);
      return;
    }
    (void)database.Swap("wsj", base);  // keep the next ingest O(batch)
    ++iters;
  }
  st.SetItemsProcessed(static_cast<int64_t>(iters * kAppendBatch));
  if (iters > 0) {
    const double per_ingest = total / static_cast<double>(iters);
    st.counters["trees_per_second"] =
        per_ingest > 0.0 ? kAppendBatch / per_ingest : 0.0;
    IngestTable().Record(durable ? "durable:on" : "durable:off", "Ingest",
                         Measurement{per_ingest, kAppendBatch, true});
  }
  if (durable) fs::remove_all(wal_dir);
}

/// Suite QPS while an ingest thread keeps appending into the same corpus.
/// The thread ingests 8-tree batches; past 64 delta trees the background
/// compactor folds them, and past ~192 ingested trees a Swap resets the
/// corpus to its base so the working set stays bounded across iterations.
void BenchQueryDuringIngest(benchmark::State& st) {
  db::Database* database = GetDatabase(0);
  IngestFixture& fx = GetIngestFixture();
  const std::vector<std::string>& queries = SuiteQueries();
  const SnapshotPtr base = database->snapshot("wsj");
  if (base == nullptr) {
    st.SkipWithError("no corpora attached");
    return;
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ingested{0};
  std::atomic<int> ingest_errors{0};
  std::thread ingester([&] {
    const int kBatch = static_cast<int>(fx.live_batch.size());
    int since_reset = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status s = database->Ingest("wsj", CloneCorpus(fx.live_batch));
      if (!s.ok()) {
        ingest_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      ingested.fetch_add(kBatch, std::memory_order_relaxed);
      since_reset += kBatch;
      if (since_reset >= 192) {
        (void)database->Swap("wsj", base);
        since_reset = 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  double total = 0.0;
  uint64_t evaluated = 0;
  for (auto _ : st) {
    Timer timer;
    for (const std::string& q : queries) {
      Result<QueryResult> r = database->Query("wsj", q);
      if (!r.ok()) {
        stop.store(true);
        ingester.join();
        st.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    total += timer.ElapsedSeconds();
    evaluated += queries.size();
  }
  stop.store(true);
  ingester.join();
  if (ingest_errors.load() != 0) {
    st.SkipWithError("ingest failed during query load");
    return;
  }
  // Leave the corpus delta-free so a later benchmark ordering never sees
  // leftover load-generator trees.
  (void)database->Swap("wsj", base);
  st.SetItemsProcessed(static_cast<int64_t>(evaluated));
  st.counters["ingested_trees"] = static_cast<double>(ingested.load());
  if (evaluated > 0 && total > 0.0) {
    st.counters["qps"] = static_cast<double>(evaluated) / total;
    const double per_suite =
        total * static_cast<double>(queries.size()) /
        static_cast<double>(evaluated);
    IngestTable().Record("live", "Query",
                         Measurement{per_suite, queries.size(), true});
  }
}

void RegisterAll() {
  for (int delta : kDeltaSizes) {
    struct Shape {
      const char* column;
      void (*fn)(benchmark::State&, int);
    };
    for (const Shape& shape : {Shape{"Append", BenchAppend},
                               Shape{"Query", BenchQuery},
                               Shape{"Compact", BenchCompact}}) {
      std::string name = DeltaRow(delta);
      name += "/";
      name += shape.column;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [delta, fn = shape.fn](
                                       benchmark::State& st) { fn(st, delta); })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (bool durable : {false, true}) {
    const std::string name =
        std::string(durable ? "durable:on" : "durable:off") + "/Ingest";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [durable](benchmark::State& st) { BenchDurableIngest(st, durable); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("live/Query", BenchQueryDuringIngest)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
}

void PrintTables() {
  printf("%s", IngestTable()
                   .Render({"Append", "Query", "Compact", "Ingest"})
                   .c_str());
  printf("\n(Append: per %d-tree batch onto the row's delta; Query: per "
         "23-query suite pass, two-source; Compact: per delta fold; live: "
         "per suite pass under continuous ingest; durable:*: routed "
         "Database::Ingest per %d-tree batch without/with a write-ahead "
         "log (fsync per commit); scale: %d base sentences, "
         "LPATHDB_SENTENCES overrides)\n",
         kAppendBatch, kAppendBatch, IngestSentences());
}

/// Writes the table as the BENCH_ingest.json trajectory point when
/// LPATHDB_BENCH_JSON names a path.
void MaybeWriteJson() {
  const char* path = std::getenv("LPATHDB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::map<std::string, std::string> extra = RunMetadataJson();
  extra["benchmark"] = "\"ingest\"";
  extra["unit"] = "\"seconds per operation (see column docs)\"";
  extra["sentences"] = std::to_string(IngestSentences());
  extra["delta_sizes"] = "[16, 128, 1024]";
  extra["append_batch"] = std::to_string(kAppendBatch);
  const std::string json = IngestTable().RenderJson(extra);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fputs(json.c_str(), f);
  std::fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::MaybeWriteJson();
  lpath::bench::FreeFixture();
  return 0;
}
