// Ablation A3: construction costs — label assignment (both schemes),
// clustered relation + index build, TGrep2 binary image build and
// save/load, and bracketed-text serialization/parsing. These are the
// "preprocessing" costs each system pays before its first query.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util/fixtures.h"
#include "label/labeler.h"
#include "tree/bracket_io.h"

namespace lpath {
namespace bench {

void BuildRegister() {
  const EngineSet& fx = GetFixture(Dataset::kWsj);
  const Corpus& corpus = fx.corpus();

  benchmark::RegisterBenchmark("LabelLPath", [&corpus](benchmark::State& st) {
    std::vector<Label> labels;
    size_t total = 0;
    for (auto _ : st) {
      total = 0;
      for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
        ComputeLPathLabels(corpus.tree(tid), &labels);
        total += labels.size();
      }
      benchmark::DoNotOptimize(total);
    }
    st.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kIsIterationInvariantRate);
  });

  benchmark::RegisterBenchmark("LabelXPath", [&corpus](benchmark::State& st) {
    std::vector<Label> labels;
    size_t total = 0;
    for (auto _ : st) {
      total = 0;
      for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
        ComputeXPathLabels(corpus.tree(tid), &labels);
        total += labels.size();
      }
      benchmark::DoNotOptimize(total);
    }
    st.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kIsIterationInvariantRate);
  });

  benchmark::RegisterBenchmark("RelationBuild",
                               [&corpus](benchmark::State& st) {
                                 for (auto _ : st) {
                                   Result<NodeRelation> rel =
                                       NodeRelation::Build(corpus);
                                   if (!rel.ok()) {
                                     st.SkipWithError("build failed");
                                     return;
                                   }
                                   benchmark::DoNotOptimize(rel->row_count());
                                 }
                               });

  benchmark::RegisterBenchmark("TgrepImageBuild",
                               [&corpus](benchmark::State& st) {
                                 for (auto _ : st) {
                                   tgrep::TgrepCorpus tc =
                                       tgrep::TgrepCorpus::Build(corpus);
                                   benchmark::DoNotOptimize(tc.size());
                                 }
                               });

  benchmark::RegisterBenchmark(
      "TgrepImageSaveLoad", [&corpus](benchmark::State& st) {
        tgrep::TgrepCorpus tc = tgrep::TgrepCorpus::Build(corpus);
        const std::string path = "/tmp/lpathdb_bench_image.ltg2";
        for (auto _ : st) {
          if (!tc.Save(path).ok()) {
            st.SkipWithError("save failed");
            return;
          }
          Result<tgrep::TgrepCorpus> loaded = tgrep::TgrepCorpus::Load(path);
          if (!loaded.ok()) {
            st.SkipWithError("load failed");
            return;
          }
          benchmark::DoNotOptimize(loaded->size());
        }
        std::remove(path.c_str());
      });

  benchmark::RegisterBenchmark("BracketWrite",
                               [&corpus](benchmark::State& st) {
                                 for (auto _ : st) {
                                   std::string text =
                                       WriteBracketCorpus(corpus);
                                   benchmark::DoNotOptimize(text.size());
                                 }
                               });

  benchmark::RegisterBenchmark(
      "BracketParse", [&corpus](benchmark::State& st) {
        const std::string text = WriteBracketCorpus(corpus);
        for (auto _ : st) {
          Corpus reparsed;
          if (!ParseBracketText(text, &reparsed).ok()) {
            st.SkipWithError("parse failed");
            return;
          }
          benchmark::DoNotOptimize(reparsed.TotalNodes());
        }
      });
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::BuildRegister();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("(corpus: %d WSJ-profile sentences, %zu nodes)\n",
              lpath::bench::BenchmarkSentences(),
              lpath::bench::GetFixture(lpath::bench::Dataset::kWsj)
                  .corpus().TotalNodes());
  return 0;
}
