// Batch-vs-row executor comparison over the 23-query WSJ suite.
//
// Three engine columns, identical plans, different kernels/backings:
//   Row        — the scalar kernel (ExecOptions::vectorized = false) over
//                the built in-memory relation; the differential-testing
//                reference.
//   Batch      — the vectorized kernel (selection vectors over ~1024-row
//                column chunks) over the same built relation.
//   Compressed — the vectorized kernel over a relation opened from a saved
//                v2 image whose row columns are codec-encoded (bit-packed
//                FOR / RLE), with scans decoding fused from the compressed
//                payload (ExecOptions::scan_encoded = true).
// Expected shape: Batch >= Row on scan-heavy queries (tighter filter
// loops), Compressed within noise of Batch (the fused decode trades
// memory bandwidth for a few shifts per block). The printed footer also
// reports the v1 (all-raw) vs v2 (encoded) image sizes for the corpus —
// the compression side of the trade.
//
// Machine-readable output: set LPATHDB_BENCH_JSON=<path> to dump the table
// as a BENCH_batch.json trajectory (bench_diff.py diffs it, including the
// Batch/Row ratio via --ratio); --benchmark_out gives the raw dump. CI
// runs both through the bench_batch_report ctest entry.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "bench_common.h"
#include "common/str_util.h"
#include "storage/image.h"
#include "storage/snapshot.h"

namespace lpath {
namespace bench {
namespace {

/// The three engines plus the image bookkeeping, built once per process.
/// Leaked-pointer cache (same reason as fig11's service registry: no
/// static destructor ordering games under LeakSanitizer); main() frees it.
struct BatchFixture {
  SnapshotPtr mapped_snapshot;  ///< opened from the saved v2 image
  std::unique_ptr<LPathEngine> row;
  std::unique_ptr<LPathEngine> batch;
  std::unique_ptr<LPathEngine> compressed;
  std::string image_path;       ///< the v2 image (deleted by main)
  uint64_t image_bytes_v1 = 0;  ///< all-raw format, for the size footer
  uint64_t image_bytes_v2 = 0;  ///< encoded-columns format
};

BatchFixture*& FixtureSlot() {
  static BatchFixture* fixture = nullptr;
  return fixture;
}

BatchFixture& GetBatchFixture() {
  BatchFixture*& slot = FixtureSlot();
  if (slot != nullptr) return *slot;
  auto* fx = new BatchFixture();
  const EngineSet& base = GetFixture(Dataset::kWsj);

  fx->image_path =
      (std::filesystem::temp_directory_path() /
       ("lpathdb_bench_batch_" + std::to_string(BenchmarkSentences()) +
        ".img"))
          .string();
  const std::string v1_path = fx->image_path + ".v1";

  ImageSaveStats v2_stats;
  Status saved = base.lpath_snapshot->Save(fx->image_path, {}, &v2_stats);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot save v2 image: %s\n",
                 saved.ToString().c_str());
    std::exit(1);
  }
  fx->image_bytes_v2 = v2_stats.file_bytes;
  ImageSaveOptions v1_options;
  v1_options.format_version = 1;
  saved = base.lpath_snapshot->Save(v1_path, v1_options);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot save v1 image: %s\n",
                 saved.ToString().c_str());
    std::exit(1);
  }
  fx->image_bytes_v1 = std::filesystem::file_size(v1_path);
  std::filesystem::remove(v1_path);

  Result<SnapshotPtr> mapped = CorpusSnapshot::Open(fx->image_path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", fx->image_path.c_str(),
                 mapped.status().ToString().c_str());
    std::exit(1);
  }
  fx->mapped_snapshot = std::move(mapped).value();

  LPathEngine::Options row_options;
  row_options.exec.vectorized = false;
  fx->row = std::make_unique<LPathEngine>(base.lpath_relation(), row_options);

  LPathEngine::Options batch_options;
  batch_options.exec.vectorized = true;
  fx->batch =
      std::make_unique<LPathEngine>(base.lpath_relation(), batch_options);

  LPathEngine::Options compressed_options;
  compressed_options.exec.vectorized = true;
  compressed_options.exec.scan_encoded = true;
  fx->compressed = std::make_unique<LPathEngine>(
      fx->mapped_snapshot->relation(), compressed_options);

  slot = fx;
  return *fx;
}

ReportTable& BatchTable() {
  static ReportTable* table = new ReportTable(
      "Batch executor — row vs. batch vs. batch-over-compressed (WSJ, "
      "23-query suite)");
  return *table;
}

void RegisterAll() {
  BatchFixture& fx = GetBatchFixture();
  for (const BenchmarkQuery& q : The23Queries()) {
    const std::string row = QueryRowName(q.id);
    RegisterQueryBench(&BatchTable(), row, "Row", fx.row.get(), q.lpath);
    RegisterQueryBench(&BatchTable(), row, "Batch", fx.batch.get(), q.lpath);
    RegisterQueryBench(&BatchTable(), row, "Compressed", fx.compressed.get(),
                       q.lpath);
  }
}

void PrintTables() {
  const BatchFixture& fx = GetBatchFixture();
  printf("%s",
         BatchTable().Render({"Row", "Batch", "Compressed"}).c_str());
  printf("\nimage size: v2 (encoded) %s bytes vs v1 (all-raw) %s bytes "
         "(%.1f%%)\n",
         FormatWithCommas(static_cast<int64_t>(fx.image_bytes_v2)).c_str(),
         FormatWithCommas(static_cast<int64_t>(fx.image_bytes_v1)).c_str(),
         fx.image_bytes_v1 == 0
             ? 100.0
             : 100.0 * static_cast<double>(fx.image_bytes_v2) /
                   static_cast<double>(fx.image_bytes_v1));
  printf("(scale: %d sentences, LPATHDB_SENTENCES overrides; Row = scalar "
         "kernel, Batch = selection-vector kernel, Compressed = batch over "
         "the mapped v2 image with fused decode)\n",
         BenchmarkSentences());
}

/// Writes the table as the BENCH_batch.json trajectory point when
/// LPATHDB_BENCH_JSON names a path.
void MaybeWriteJson() {
  const char* path = std::getenv("LPATHDB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  const BatchFixture& fx = GetBatchFixture();
  std::map<std::string, std::string> extra = RunMetadataJson();
  extra["benchmark"] = "\"batch\"";
  extra["unit"] = "\"seconds per query evaluation\"";
  extra["sentences"] = std::to_string(BenchmarkSentences());
  extra["image_bytes_v1"] = std::to_string(fx.image_bytes_v1);
  extra["image_bytes_v2"] = std::to_string(fx.image_bytes_v2);
  const std::string json = BatchTable().RenderJson(extra);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fputs(json.c_str(), f);
  std::fclose(f);
  printf("wrote %s\n", path);
}

void FreeFixture() {
  BatchFixture*& slot = FixtureSlot();
  if (slot == nullptr) return;
  std::error_code ec;
  std::filesystem::remove(slot->image_path, ec);
  delete slot;
  slot = nullptr;
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::MaybeWriteJson();
  lpath::bench::FreeFixture();
  return 0;
}
