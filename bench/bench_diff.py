#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectories and annotate the deltas.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]
                  [--ratio NUM_COL DEN_COL]

Compares per-(row, column) QPS between a baseline trajectory (the
previous main-branch artifact, or the committed bench/baselines/ snapshot)
and the current run, printing a GitHub-flavoured markdown table plus
``::warning::`` / ``::notice::`` workflow annotations.

``--ratio NUM DEN`` additionally reports the per-row QPS ratio between two
columns of the *same* run (e.g. ``--ratio Batch Row`` for BENCH_batch.json:
how much faster the batch kernel is than the scalar one), for baseline and
current side by side, plus the geometric mean. A geomean below 1.0 in the
current run (the numerator column lost to the denominator) draws a
``::warning::``; like everything here it never fails the build.

Warn-only by design: the exit code is always 0. CI benchmark runners are
noisy single-CPU machines (see ROADMAP.md), so a QPS drop here is a prompt
to look at the curves, never a red build. Trajectories recorded at a
different corpus scale or on a different core count are reported as
incomparable instead of being diffed into nonsense.
"""

import argparse
import json
import math
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def cells(doc):
    """(row, column) -> QPS for every supported cell with a positive time."""
    out = {}
    for row in doc.get("rows", []):
        for column, cell in row.get("cells", {}).items():
            if not cell.get("supported", False):
                continue
            seconds = cell.get("seconds", 0.0)
            results = cell.get("results", 0)
            if seconds > 0 and results > 0:
                out[(row["row"], column)] = results / seconds
    return out


def ratios(qps, num_col, den_col):
    """row -> QPS(num_col) / QPS(den_col) for rows holding both cells."""
    out = {}
    for (row, column), value in qps.items():
        if column != num_col:
            continue
        den = qps.get((row, den_col))
        if den:
            out[row] = value / den
    return out


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def print_ratio_report(base, cur, num_col, den_col, cross_machine):
    """The --ratio section: per-row NUM/DEN QPS ratios, both trajectories."""
    base_r = ratios(base, num_col, den_col)
    cur_r = ratios(cur, num_col, den_col)
    if not cur_r:
        print(
            f"::notice::bench-diff: no rows hold both {num_col} and "
            f"{den_col} cells; --ratio skipped"
        )
        return
    print()
    print(f"### {num_col} / {den_col} QPS ratio (>1.0 = {num_col} faster)")
    print()
    print("| row | baseline | current |")
    print("|---|---:|---:|")
    # Length-then-lexical sort keeps Q2 ahead of Q10.
    for row in sorted(cur_r, key=lambda r: (len(r), r)):
        b = f"{base_r[row]:.2f}x" if row in base_r else "—"
        print(f"| {row} | {b} | {cur_r[row]:.2f}x |")
    gm = geomean(list(cur_r.values()))
    base_gm = geomean(list(base_r.values())) if base_r else None
    base_text = f" (baseline {base_gm:.2f}x)" if base_gm is not None else ""
    print(f"| **geomean** | {f'{base_gm:.2f}x' if base_gm else '—'} "
          f"| **{gm:.2f}x** |")
    if gm < 1.0 and not cross_machine:
        print(
            f"::warning::bench-diff: geomean {num_col}/{den_col} QPS ratio "
            f"is {gm:.2f}x{base_text} — the {num_col} column lost to "
            f"{den_col} overall (warn-only; check the per-row table)"
        )
    else:
        print(
            f"::notice::bench-diff: geomean {num_col}/{den_col} QPS ratio "
            f"{gm:.2f}x{base_text} over {len(cur_r)} rows"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="percent QPS drop that triggers a ::warning:: (default 10)",
    )
    parser.add_argument(
        "--ratio",
        nargs=2,
        metavar=("NUM_COL", "DEN_COL"),
        help="also report the per-row NUM_COL/DEN_COL QPS ratio",
    )
    args = parser.parse_args()

    try:
        base_doc = load(args.baseline)
        cur_doc = load(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::notice::bench-diff skipped: cannot load trajectories ({e})")
        return 0

    print(f"## Bench trajectory diff ({cur_doc.get('benchmark', '?')})")
    print(
        f"baseline: `{base_doc.get('git_sha', 'unknown')}` "
        f"({base_doc.get('compiler', '?')}, nproc {base_doc.get('nproc', '?')}, "
        f"{base_doc.get('sentences', '?')} sentences)"
    )
    print(
        f"current:  `{cur_doc.get('git_sha', 'unknown')}` "
        f"({cur_doc.get('compiler', '?')}, nproc {cur_doc.get('nproc', '?')}, "
        f"{cur_doc.get('sentences', '?')} sentences)"
    )

    # Apples-to-apples gate: corpus scale defines the workload, so a scale
    # mismatch is never comparable. A core-count mismatch (e.g. the
    # committed baseline was recorded on a 1-CPU dev container, CI runners
    # have more) still gets a diff — cross-machine deltas are indicative,
    # not alarming, so they are noted instead of warned about.
    if base_doc.get("sentences") != cur_doc.get("sentences"):
        print(
            "::notice::bench-diff skipped: sentences differs "
            f"({base_doc.get('sentences')} vs {cur_doc.get('sentences')}); "
            "trajectories are not comparable"
        )
        return 0
    cross_machine = base_doc.get("nproc") != cur_doc.get("nproc")
    if cross_machine:
        print(
            "::notice::bench-diff: nproc differs "
            f"({base_doc.get('nproc')} vs {cur_doc.get('nproc')}); diffing "
            "anyway, but treat deltas as cross-machine indications only"
        )

    base = cells(base_doc)
    cur = cells(cur_doc)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("::notice::bench-diff: no overlapping cells to compare")
        return 0

    print()
    print("| row | column | baseline QPS | current QPS | delta |")
    print("|---|---|---:|---:|---:|")
    regressions = []
    for key in shared:
        b, c = base[key], cur[key]
        delta = 100.0 * (c - b) / b
        row, column = key
        print(f"| {row} | {column} | {b:,.0f} | {c:,.0f} | {delta:+.1f}% |")
        if delta < -args.threshold:
            regressions.append((row, column, delta))

    missing = sorted(set(base) - set(cur))
    for row, column in missing:
        print(f"::notice::bench-diff: cell {row}/{column} vanished from the run")

    if regressions and cross_machine:
        print(
            f"::notice::bench-diff: {len(regressions)} cell(s) differ more "
            f"than {args.threshold:.0f}% QPS, but the runs came from machines "
            "with different core counts — regenerate a same-machine baseline "
            "before reading anything into it"
        )
    elif regressions:
        worst = min(regressions, key=lambda r: r[2])
        print(
            f"::warning::bench-diff: {len(regressions)} cell(s) regressed more "
            f"than {args.threshold:.0f}% QPS; worst is {worst[0]}/{worst[1]} "
            f"at {worst[2]:+.1f}% (warn-only: CI bench runners are noisy — "
            "compare the uploaded curves before reacting)"
        )
    else:
        print(
            f"::notice::bench-diff: no cell regressed more than "
            f"{args.threshold:.0f}% QPS across {len(shared)} cells"
        )

    if args.ratio:
        print_ratio_report(base, cur, args.ratio[0], args.ratio[1],
                           cross_machine)
    return 0


if __name__ == "__main__":
    sys.exit(main())
