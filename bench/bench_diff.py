#!/usr/bin/env python3
"""Diff two BENCH_fig11.json trajectories and annotate the deltas.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Compares per-(row, thread-column) QPS between a baseline trajectory (the
previous main-branch artifact, or the committed bench/baselines/ snapshot)
and the current run, printing a GitHub-flavoured markdown table plus
``::warning::`` / ``::notice::`` workflow annotations.

Warn-only by design: the exit code is always 0. CI benchmark runners are
noisy single-CPU machines (see ROADMAP.md), so a QPS drop here is a prompt
to look at the curves, never a red build. Trajectories recorded at a
different corpus scale or on a different core count are reported as
incomparable instead of being diffed into nonsense.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def cells(doc):
    """(row, column) -> QPS for every supported cell with a positive time."""
    out = {}
    for row in doc.get("rows", []):
        for column, cell in row.get("cells", {}).items():
            if not cell.get("supported", False):
                continue
            seconds = cell.get("seconds", 0.0)
            results = cell.get("results", 0)
            if seconds > 0 and results > 0:
                out[(row["row"], column)] = results / seconds
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="percent QPS drop that triggers a ::warning:: (default 10)",
    )
    args = parser.parse_args()

    try:
        base_doc = load(args.baseline)
        cur_doc = load(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::notice::bench-diff skipped: cannot load trajectories ({e})")
        return 0

    print(f"## Bench trajectory diff ({cur_doc.get('benchmark', '?')})")
    print(
        f"baseline: `{base_doc.get('git_sha', 'unknown')}` "
        f"({base_doc.get('compiler', '?')}, nproc {base_doc.get('nproc', '?')}, "
        f"{base_doc.get('sentences', '?')} sentences)"
    )
    print(
        f"current:  `{cur_doc.get('git_sha', 'unknown')}` "
        f"({cur_doc.get('compiler', '?')}, nproc {cur_doc.get('nproc', '?')}, "
        f"{cur_doc.get('sentences', '?')} sentences)"
    )

    # Apples-to-apples gate: corpus scale defines the workload, so a scale
    # mismatch is never comparable. A core-count mismatch (e.g. the
    # committed baseline was recorded on a 1-CPU dev container, CI runners
    # have more) still gets a diff — cross-machine deltas are indicative,
    # not alarming, so they are noted instead of warned about.
    if base_doc.get("sentences") != cur_doc.get("sentences"):
        print(
            "::notice::bench-diff skipped: sentences differs "
            f"({base_doc.get('sentences')} vs {cur_doc.get('sentences')}); "
            "trajectories are not comparable"
        )
        return 0
    cross_machine = base_doc.get("nproc") != cur_doc.get("nproc")
    if cross_machine:
        print(
            "::notice::bench-diff: nproc differs "
            f"({base_doc.get('nproc')} vs {cur_doc.get('nproc')}); diffing "
            "anyway, but treat deltas as cross-machine indications only"
        )

    base = cells(base_doc)
    cur = cells(cur_doc)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("::notice::bench-diff: no overlapping cells to compare")
        return 0

    print()
    print("| row | column | baseline QPS | current QPS | delta |")
    print("|---|---|---:|---:|---:|")
    regressions = []
    for key in shared:
        b, c = base[key], cur[key]
        delta = 100.0 * (c - b) / b
        row, column = key
        print(f"| {row} | {column} | {b:,.0f} | {c:,.0f} | {delta:+.1f}% |")
        if delta < -args.threshold:
            regressions.append((row, column, delta))

    missing = sorted(set(base) - set(cur))
    for row, column in missing:
        print(f"::notice::bench-diff: cell {row}/{column} vanished from the run")

    if regressions and cross_machine:
        print(
            f"::notice::bench-diff: {len(regressions)} cell(s) differ more "
            f"than {args.threshold:.0f}% QPS, but the runs came from machines "
            "with different core counts — regenerate a same-machine baseline "
            "before reading anything into it"
        )
    elif regressions:
        worst = min(regressions, key=lambda r: r[2])
        print(
            f"::warning::bench-diff: {len(regressions)} cell(s) regressed more "
            f"than {args.threshold:.0f}% QPS; worst is {worst[0]}/{worst[1]} "
            f"at {worst[2]:+.1f}% (warn-only: CI bench runners are noisy — "
            "compare the uploaded curves before reacting)"
        )
    else:
        print(
            f"::notice::bench-diff: no cell regressed more than "
            f"{args.threshold:.0f}% QPS across {len(shared)} cells"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
