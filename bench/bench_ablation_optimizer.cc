// Ablation A1 (§5.2 of the paper discusses how low-selectivity tags hurt
// the relational plans): executor configurations on the queries most
// sensitive to join order and intermediate-result size.
//
//   greedy        — statistics-driven join order + distinct early exit
//   left-to-right — join in query-step order (what a naive translation
//                   would ship), early exit on
//   no-early-exit — greedy order, but materialize every binding and
//                   deduplicate at the end (the classic RDBMS DISTINCT
//                   plan the paper's engine suffered under on Q3/Q18/Q22)
//   direct-plan   — greedy, skipping the SQL text round trip (measures the
//                   cost of the LPath→SQL→parse detour)

#include "bench_common.h"

namespace lpath {
namespace bench {

ReportTable& AblTable() {
  static ReportTable* table =
      new ReportTable("Ablation — executor configurations, WSJ profile");
  return *table;
}

std::vector<std::unique_ptr<LPathEngine>>& Engines() {
  static auto* engines = new std::vector<std::unique_ptr<LPathEngine>>();
  return *engines;
}

void AblRegister() {
  const EngineSet& fx = GetFixture(Dataset::kWsj);

  LPathEngine::Options greedy;
  LPathEngine::Options ltr;
  ltr.exec.join_order = sql::ExecOptions::JoinOrder::kLeftToRight;
  LPathEngine::Options naive;
  naive.exec.distinct_early_exit = false;
  LPathEngine::Options direct;
  direct.via_sql_text = false;
  LPathEngine::Options nested;
  nested.unnest_predicates = false;

  Engines().push_back(
      std::make_unique<LPathEngine>(fx.lpath_relation(), greedy));
  Engines().push_back(std::make_unique<LPathEngine>(fx.lpath_relation(), ltr));
  Engines().push_back(
      std::make_unique<LPathEngine>(fx.lpath_relation(), naive));
  Engines().push_back(
      std::make_unique<LPathEngine>(fx.lpath_relation(), direct));
  Engines().push_back(
      std::make_unique<LPathEngine>(fx.lpath_relation(), nested));
  const char* names[] = {"greedy", "left-to-right", "no-early-exit",
                         "direct-plan", "no-unnesting"};

  for (int id : {1, 3, 6, 9, 12, 18, 22}) {
    const BenchmarkQuery& q = QueryById(id);
    const std::string row = QueryRowName(q.id);
    for (size_t e = 0; e < Engines().size(); ++e) {
      RegisterQueryBench(&AblTable(), row, names[e], Engines()[e].get(),
                         q.lpath);
    }
  }
}

void AblPrint() {
  printf("%s", AblTable()
                   .Render({"greedy", "left-to-right", "no-early-exit",
                            "direct-plan", "no-unnesting"})
                   .c_str());
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::AblRegister();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::AblPrint();
  return 0;
}
