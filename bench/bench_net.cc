// Network front-end benchmark: query throughput and latency through the
// wire protocol (src/net/) as a function of concurrent connections.
//
//   conns:N / PerQuery — mean seconds per query with N client threads,
//                        each on its own connection, issuing a mixed hot
//                        query set closed-loop (depth 1).
//   conns:N / P50, P99 — latency percentiles over every per-query sample
//                        at that connection count. The p99-vs-p50 gap is
//                        the queueing the shared pool introduces as
//                        connections contend.
//   pipeline:8 / *     — one connection, 8 requests kept in flight
//                        (request-id multiplexing); per-query time is the
//                        completion interval, which shows what pipelining
//                        amortizes versus conns:1.
//
// The server and clients share this process (loopback sockets, no remote
// machine), so numbers include both sides' work — that is the quantity a
// co-located proxy or test harness sees, and it keeps the trajectory
// self-contained and comparable across commits.
//
// Machine-readable output: set LPATHDB_BENCH_JSON=<path> to dump the table
// as the BENCH_net.json trajectory (bench_diff.py diffs it against
// bench/baselines/, warn-only). CI runs the bench_net_report ctest entry.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "db/database.h"
#include "gen/generator.h"
#include "net/client.h"
#include "net/server.h"

namespace lpath {
namespace bench {
namespace {

/// The hot set every connection cycles through: cheap and mid-weight
/// navigations plus one scoped-edge query, all plan-cache hits after the
/// first round.
constexpr const char* kQueries[] = {
    "//VP",
    "//NP//N",
    "//S//PP",
    "//VP{/V-->NP}",
};
constexpr int kNumQueries =
    static_cast<int>(sizeof(kQueries) / sizeof(kQueries[0]));
constexpr int kQueriesPerThread = 24;
constexpr int kPipelineDepth = 8;

int NetSentences() { return std::max(100, BenchmarkSentences() / 4); }

struct NetFixture {
  std::unique_ptr<db::Database> db;
  std::unique_ptr<net::NetServer> server;
};

NetFixture*& FixtureSlot() {
  static NetFixture* fixture = nullptr;
  return fixture;
}

NetFixture& GetNetFixture() {
  NetFixture*& slot = FixtureSlot();
  if (slot != nullptr) return *slot;
  auto* fx = new NetFixture();
  fx->db = std::make_unique<db::Database>();
  Result<Corpus> corpus = gen::GenerateWsj(NetSentences(), 2006);
  if (!corpus.ok()) {
    std::fprintf(stderr, "cannot generate corpus: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  Status attached = fx->db->OpenCorpus("wsj", std::move(corpus).value());
  if (!attached.ok()) {
    std::fprintf(stderr, "cannot attach corpus: %s\n",
                 attached.ToString().c_str());
    std::exit(1);
  }
  fx->server = std::make_unique<net::NetServer>(fx->db.get());
  Status started = fx->server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }
  slot = fx;
  return *fx;
}

void FreeFixture() {
  NetFixture*& slot = FixtureSlot();
  if (slot == nullptr) return;
  slot->server->Stop();
  delete slot;
  slot = nullptr;
}

ReportTable& NetTable() {
  static ReportTable* table = new ReportTable(
      "Network front end — per-query latency through the wire protocol vs. "
      "connection count (loopback, closed-loop clients; pipeline row keeps "
      "8 requests in flight on one connection)");
  return *table;
}

std::string RowName(const char* kind, int n) {
  std::string name = kind;
  name += ":";
  name += std::to_string(n);
  return name;
}

void RecordRow(const std::string& row, double total_seconds, uint64_t ops,
               std::vector<double>* samples) {
  if (ops == 0 || samples->empty()) return;
  std::sort(samples->begin(), samples->end());
  const double p50 = (*samples)[samples->size() / 2];
  const double p99 = (*samples)[samples->size() * 99 / 100];
  NetTable().Record(row, "PerQuery",
                    Measurement{total_seconds / static_cast<double>(ops),
                                static_cast<size_t>(ops), true});
  NetTable().Record(row, "P50", Measurement{p50, 1, true});
  NetTable().Record(row, "P99", Measurement{p99, 1, true});
}

/// N connections, each its own thread, closed-loop over the hot set.
void BenchConnections(benchmark::State& st, int conns) {
  NetFixture& fx = GetNetFixture();
  const uint16_t port = fx.server->port();
  std::vector<double> samples;
  std::mutex samples_mu;
  std::string failure;
  double total = 0.0;
  uint64_t ops = 0;

  for (auto _ : st) {
    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (int t = 0; t < conns; ++t) {
      threads.emplace_back([&, t] {
        net::Client client;
        Status s = client.Connect("127.0.0.1", port);
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(samples_mu);
          failure = s.ToString();
          return;
        }
        std::vector<double> local;
        local.reserve(kQueriesPerThread);
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const char* q = kQueries[(t + i) % kNumQueries];
          Timer timer;
          auto r = client.Query("wsj", q);
          const double seconds = timer.ElapsedSeconds();
          if (!r.ok()) {
            std::lock_guard<std::mutex> lock(samples_mu);
            failure = r.status().ToString();
            return;
          }
          local.push_back(seconds);
        }
        client.Close();
        std::lock_guard<std::mutex> lock(samples_mu);
        samples.insert(samples.end(), local.begin(), local.end());
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (!failure.empty()) {
      st.SkipWithError(failure.c_str());
      return;
    }
    total += wall.ElapsedSeconds();
    ops += static_cast<uint64_t>(conns) * kQueriesPerThread;
  }

  st.SetItemsProcessed(static_cast<int64_t>(ops));
  if (total > 0.0 && ops > 0) {
    st.counters["qps"] = static_cast<double>(ops) / total;
  }
  RecordRow(RowName("conns", conns), total, ops, &samples);
}

/// One connection, kPipelineDepth requests always in flight: writes the
/// whole window, then refills as responses complete. The per-op sample is
/// the inter-completion time, the quantity pipelining optimizes.
void BenchPipeline(benchmark::State& st) {
  NetFixture& fx = GetNetFixture();
  std::vector<double> samples;
  double total = 0.0;
  uint64_t ops = 0;

  for (auto _ : st) {
    net::Client client;
    Status s = client.Connect("127.0.0.1", fx.server->port());
    if (!s.ok()) {
      st.SkipWithError(s.ToString().c_str());
      return;
    }
    std::vector<uint32_t> window;
    int sent = 0;
    Timer wall;
    Timer interval;
    auto send_one = [&]() -> Status {
      auto id = client.SendExecute("wsj", kQueries[sent % kNumQueries]);
      if (!id.ok()) return id.status();
      window.push_back(*id);
      ++sent;
      return Status::OK();
    };
    for (int i = 0; i < kPipelineDepth; ++i) {
      Status sent_ok = send_one();
      if (!sent_ok.ok()) {
        st.SkipWithError(sent_ok.ToString().c_str());
        return;
      }
    }
    for (int done = 0; done < kQueriesPerThread * 4; ++done) {
      uint32_t id = window.front();
      window.erase(window.begin());
      Status response = client.ReadResponse(id, nullptr);
      if (!response.ok()) {
        st.SkipWithError(response.ToString().c_str());
        return;
      }
      samples.push_back(interval.ElapsedSeconds());
      interval = Timer();
      ++ops;
      if (done + kPipelineDepth < kQueriesPerThread * 4) {
        Status sent_ok = send_one();
        if (!sent_ok.ok()) {
          st.SkipWithError(sent_ok.ToString().c_str());
          return;
        }
      }
    }
    total += wall.ElapsedSeconds();
    client.Close();
  }

  st.SetItemsProcessed(static_cast<int64_t>(ops));
  if (total > 0.0 && ops > 0) {
    st.counters["qps"] = static_cast<double>(ops) / total;
  }
  RecordRow(RowName("pipeline", kPipelineDepth), total, ops, &samples);
}

void RegisterAll() {
  for (int conns : {1, 2, 4, 8}) {
    std::string name = "net/" + RowName("conns", conns);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [conns](benchmark::State& st) { BenchConnections(st, conns); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("net/pipeline:8", BenchPipeline)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
}

void PrintTables() {
  printf("%s", NetTable().Render({"PerQuery", "P50", "P99"}).c_str());
  printf("\n(closed-loop loopback clients, %d queries per connection per "
         "iteration over %d hot queries; scale: %d sentences, "
         "LPATHDB_SENTENCES overrides)\n",
         kQueriesPerThread, kNumQueries, NetSentences());
}

/// Writes the table as the BENCH_net.json trajectory point when
/// LPATHDB_BENCH_JSON names a path.
void MaybeWriteJson() {
  const char* path = std::getenv("LPATHDB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::map<std::string, std::string> extra = RunMetadataJson();
  extra["benchmark"] = "\"net\"";
  extra["unit"] = "\"seconds per query\"";
  extra["sentences"] = std::to_string(NetSentences());
  extra["queries_per_thread"] = std::to_string(kQueriesPerThread);
  extra["pipeline_depth"] = std::to_string(kPipelineDepth);
  const std::string json = NetTable().RenderJson(extra);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fputs(json.c_str(), f);
  std::fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace
}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::PrintTables();
  lpath::bench::MaybeWriteJson();
  lpath::bench::FreeFixture();
  return 0;
}
