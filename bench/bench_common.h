// Shared helpers for the per-figure benchmark binaries: register a
// (query, engine) cell as a google-benchmark and record its mean time and
// result count into a ReportTable printed after the run.

#ifndef LPATHDB_BENCH_BENCH_COMMON_H_
#define LPATHDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util/fixtures.h"
#include "bench_util/report.h"
#include "bench_util/suite.h"
#include "common/timer.h"

namespace lpath {
namespace bench {

/// "Q<id>" row label.  Built with += rather than `"Q" + std::to_string(id)`:
/// gcc 12's -Wrestrict misfires on the temporary concat at -O2 (PR 105651).
inline std::string QueryRowName(int id) {
  std::string name = "Q";
  name += std::to_string(id);
  return name;
}

/// "paper <dataset> count: <n>" annotation text (same -Wrestrict dodge).
inline std::string PaperCountAnnotation(const char* dataset, size_t n) {
  std::string text = "paper ";
  text += dataset;
  text += " count: ";
  text += std::to_string(n);
  return text;
}

/// Registers a benchmark that repeatedly evaluates `query` on `engine`,
/// recording the mean wall time into `table` at (row, column).
inline void RegisterQueryBench(ReportTable* table, const std::string& row,
                               const std::string& column,
                               const QueryEngine* engine, std::string query) {
  const std::string name = row + "/" + column;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [table, row, column, engine, query = std::move(query)](
          benchmark::State& st) {
        double total = 0.0;
        uint64_t iters = 0;
        size_t count = 0;
        for (auto _ : st) {
          Timer timer;
          Result<QueryResult> r = engine->Run(query);
          total += timer.ElapsedSeconds();
          if (!r.ok()) {
            table->RecordUnsupported(row, column);
            st.SkipWithError(r.status().ToString().c_str());
            return;
          }
          count = r->count();
          ++iters;
          benchmark::DoNotOptimize(count);
        }
        st.counters["results"] = static_cast<double>(count);
        if (iters > 0) {
          table->Record(row, column, Measurement{total / iters, count, true});
        }
      });
}

/// Standard main body: init benchmark, run, print the tables.
#define LPATHDB_BENCH_MAIN(print_stmt)                  \
  int main(int argc, char** argv) {                     \
    benchmark::Initialize(&argc, argv);                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    RegisterAll();                                      \
    benchmark::RunSpecifiedBenchmarks();                \
    benchmark::Shutdown();                              \
    print_stmt;                                         \
    return 0;                                           \
  }

}  // namespace bench
}  // namespace lpath

#endif  // LPATHDB_BENCH_BENCH_COMMON_H_
