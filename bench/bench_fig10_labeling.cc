// Figure 10: the LPath labeling scheme vs. the XPath tag-position labeling
// (DeHaan et al.) on the 11 XPath-expressible queries, WSJ profile, with
// every other component identical (same optimizer, same executor).
//
// Expected shape: near-parity per query — the paper's conclusion is that
// the LPath labeling adds the immediate axes, scoping and alignment
// *without* degrading XPath-fragment performance.

#include "bench_common.h"

namespace lpath {
namespace bench {

ReportTable& Fig10Table() {
  static ReportTable* table = new ReportTable(
      "Figure 10 — LPath vs XPath labeling scheme, WSJ profile");
  return *table;
}

void Fig10Register() {
  const EngineSet& fx = GetFixture(Dataset::kWsj);
  for (const BenchmarkQuery& q : XPathExpressibleQueries()) {
    const std::string row = QueryRowName(q.id);
    RegisterQueryBench(&Fig10Table(), row, "LPath labeling", fx.lpath.get(),
                       q.lpath);
    RegisterQueryBench(&Fig10Table(), row, "XPath labeling", fx.xpath.get(),
                       q.lpath);
  }
}

void Fig10Print() {
  printf("%s",
         Fig10Table().Render({"LPath labeling", "XPath labeling"}).c_str());
  printf("\n(the remaining 12 queries are not XPath-expressible — "
         "Lemma 3.1 — and the XPath labeling rejects them)\n");
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::Fig10Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::Fig10Print();
  return 0;
}
