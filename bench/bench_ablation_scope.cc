// Ablation A2: the cost of subtree scoping as a language primitive
// (§2.2.2 argues that rewriting scope away can blow up the query, so LPath
// implements it natively as containment conjuncts).
//
// Rows compare: the scoped query on the relational engine, its unscoped
// counterpart (what you'd ask without the feature — note the different,
// larger answer), and the scoped query on the navigational interpreter
// (the no-index baseline).

#include "bench_common.h"

namespace lpath {
namespace bench {

ReportTable& ScopeTable() {
  static ReportTable* table =
      new ReportTable("Ablation — subtree scoping, WSJ profile");
  return *table;
}

void ScopeRegister() {
  const EngineSet& fx = GetFixture(Dataset::kWsj);
  struct Case {
    const char* row;
    const char* scoped;
    const char* unscoped;
  };
  const Case cases[] = {
      {"Q4", "//VP{/VB-->NN}", "//VP/VB-->NN"},
      {"Q6", "//VP{//NP$}", "//VP//NP"},
      {"Q11", "//S[{//_[@lex=what]->_[@lex=building]}]",
       "//S[//_[@lex=what]->_[@lex=building]]"},
  };
  for (const Case& c : cases) {
    RegisterQueryBench(&ScopeTable(), c.row, "scoped (relational)",
                       fx.lpath.get(), c.scoped);
    RegisterQueryBench(&ScopeTable(), c.row, "unscoped (relational)",
                       fx.lpath.get(), c.unscoped);
    RegisterQueryBench(&ScopeTable(), c.row, "scoped (navigational)",
                       fx.navigational.get(), c.scoped);
  }
}

void ScopePrint() {
  printf("%s", ScopeTable()
                   .Render({"scoped (relational)", "unscoped (relational)",
                            "scoped (navigational)"})
                   .c_str());
  printf("\n(scoped and unscoped queries answer different questions — the "
         "counts differ by design;\n the point is that native scoping costs "
         "no more than the unscoped query)\n");
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::ScopeRegister();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::ScopePrint();
  return 0;
}
