// Figure 8: per-query execution time on the SWB-profile corpus, same three
// systems as Figure 7.
//
// Expected shape: the LPath engine is fastest across the board here — the
// paper attributes this to the WSJ-frequent query tags being much rarer in
// Switchboard, so the relational plans never degenerate into huge
// intermediate results.

#include "bench_common.h"

namespace lpath {
namespace bench {

ReportTable& Fig8Table() {
  static ReportTable* table =
      new ReportTable("Figure 8 — query execution time, SWB profile");
  return *table;
}

void Fig8Register() {
  const EngineSet& fx = GetFixture(Dataset::kSwb);
  for (const BenchmarkQuery& q : The23Queries()) {
    const std::string row = QueryRowName(q.id);
    RegisterQueryBench(&Fig8Table(), row, "LPath", fx.lpath.get(), q.lpath);
    RegisterQueryBench(&Fig8Table(), row, "TGrep2", fx.tgrep.get(), q.tgrep);
    RegisterQueryBench(&Fig8Table(), row, "CorpusSearch", fx.cs.get(), q.cs);
  }
}

void Fig8Print() {
  std::map<std::string, std::string> annotations;
  for (const BenchmarkQuery& q : The23Queries()) {
    annotations[QueryRowName(q.id)] = PaperCountAnnotation("SWB", q.paper_swb);
  }
  printf("%s",
         Fig8Table()
             .Render({"LPath", "TGrep2", "CorpusSearch"}, annotations)
             .c_str());
  printf("\n(scale: %d sentences; set LPATHDB_SENTENCES=49000 for paper "
         "scale)\n",
         BenchmarkSentences());
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::Fig8Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::Fig8Print();
  return 0;
}
