// Figure 7: per-query execution time on the WSJ-profile corpus for the
// LPath engine, TGrep2 and CorpusSearch (all 23 queries of Figure 6c).
//
// Expected shape (paper §5.2): LPath fastest almost everywhere; its lead
// shrinks (and can flip) on queries dominated by low-selectivity tags
// (Q3, Q18, Q22 in the paper's data) and is largest on high-selectivity
// value predicates (Q12, Q13).

#include "bench_common.h"

namespace lpath {
namespace bench {

ReportTable& Fig7Table() {
  static ReportTable* table =
      new ReportTable("Figure 7 — query execution time, WSJ profile");
  return *table;
}

void Fig7Register() {
  const EngineSet& fx = GetFixture(Dataset::kWsj);
  for (const BenchmarkQuery& q : The23Queries()) {
    const std::string row = QueryRowName(q.id);
    RegisterQueryBench(&Fig7Table(), row, "LPath", fx.lpath.get(), q.lpath);
    RegisterQueryBench(&Fig7Table(), row, "TGrep2", fx.tgrep.get(), q.tgrep);
    RegisterQueryBench(&Fig7Table(), row, "CorpusSearch", fx.cs.get(), q.cs);
  }
}

void Fig7Print() {
  std::map<std::string, std::string> annotations;
  for (const BenchmarkQuery& q : The23Queries()) {
    annotations[QueryRowName(q.id)] = PaperCountAnnotation("WSJ", q.paper_wsj);
  }
  printf("%s",
         Fig7Table()
             .Render({"LPath", "TGrep2", "CorpusSearch"}, annotations)
             .c_str());
  printf("\n(scale: %d sentences; set LPATHDB_SENTENCES=49000 for paper "
         "scale)\n",
         BenchmarkSentences());
}

}  // namespace bench
}  // namespace lpath

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lpath::bench::Fig7Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpath::bench::Fig7Print();
  return 0;
}
